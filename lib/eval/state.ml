module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Products = Mf_core.Products
module Kahan = Mf_numeric.Kahan

(* Undo journal.  Backward-order assignments — the branch-and-bound hot
   path, executed millions of times per search — are journalled in flat
   parallel arrays so that assign/undo allocate nothing (boxed journal
   records were the dominant allocation of the exact search, and in
   OCaml 5 every minor collection synchronises all domains, so hot-path
   allocation destroys parallel scaling).  [Bulk] covers moves and swaps,
   whose footprint is exactly the set of x entries and machine loads the
   operation touched.  The assign/tcount/ntasks lists are
   head-most-recent, so restoring them front to back rewinds duplicated
   indices correctly. *)
type op =
  | Bulk of {
      xs : (int * float) array; (* task, previous x *)
      loads : (int * float * float) array; (* machine, previous (sum, comp) *)
      assigns : (int * int) list; (* task, previous machine *)
      tcounts : (int * int) list; (* flat (machine, type) index, previous count *)
      ntasks : (int * int) list; (* machine, previous task count *)
      prev_period : float;
      prev_valid : bool;
      prev_tload : float * float;
    }

(* Floats per flat journal entry: previous (load sum, load comp, extra,
   period, tload sum, tload comp) of the assigned machine. *)
let ja_floats = 6

type t = {
  inst : Instance.t;
  wf : Workflow.t;
  n : int;
  m : int;
  p : int;
  order : int array; (* backward order: successors first *)
  assign : int array; (* task -> machine, -1 = unassigned *)
  x : float array; (* product counts; nan when unassigned *)
  load : Kahan.t array; (* per-machine compensated loads *)
  tload : Kahan.t; (* compensated sum of all machine loads *)
  extra : float array; (* flat costs injected via assign_task ?extra *)
  tcount : int array; (* (u * p + ty) -> tasks of type ty on u *)
  ntasks : int array; (* tasks per machine *)
  mutable period : float; (* cached max load; meaningful when valid *)
  mutable period_valid : bool;
  mutable journal : op list; (* Bulk ops only *)
  (* Flat journal of backward-order assignments.  At most [n] tasks are
     assigned at once, so capacity [n] suffices; [jtag.(d)] records
     whether depth [d] was a flat assignment or a Bulk op. *)
  mutable jtag : Bytes.t; (* depth -> '\000' flat, '\001' Bulk; grows *)
  ja_task : int array; (* flat entries: assigned task *)
  ja_machine : int array; (* flat entries: its machine *)
  ja_f : float array; (* ja_floats floats per flat entry *)
  mutable ja_len : int; (* live flat entries *)
  mutable depth : int;
  (* Evaluation scratch, reused across calls so try_* allocates nothing.
     Stamps compare against a generation counter instead of being cleared. *)
  mutable mgen : int;
  mstamp : int array; (* machine -> generation of last touch *)
  mold : float array; (* load total at touch time *)
  mdelta : float array; (* accumulated tentative load delta *)
  touched : int array; (* touched machine indices *)
  mutable n_touched : int;
  mutable tgen : int;
  tstamp : int array; (* task -> generation (affected set) *)
  xnew : float array; (* tentative new x of affected tasks *)
  aff : int array; (* affected tasks *)
  mutable n_aff : int;
  stack : int array; (* DFS stack over predecessors *)
  (* Private copies of the instance's w and f matrices: Instance.w/f
     bounds-check and box their result on every call, which dominates
     the branch-and-bound inner loop; a plain nested array read here
     compiles to two loads. *)
  wrow : float array array;
  frow : float array array;
}

let create inst =
  let n = Instance.task_count inst and m = Instance.machines inst in
  let p = Instance.type_count inst in
  {
    inst;
    wf = Instance.workflow inst;
    n;
    m;
    p;
    order = Workflow.backward_order (Instance.workflow inst);
    assign = Array.make n (-1);
    x = Array.make n nan;
    load = Array.init m (fun _ -> Kahan.create ());
    tload = Kahan.create ();
    extra = Array.make m 0.0;
    tcount = Array.make (m * p) 0;
    ntasks = Array.make m 0;
    period = 0.0;
    period_valid = true;
    journal = [];
    jtag = Bytes.make (max 16 (2 * n)) '\000';
    ja_task = Array.make (max 1 n) 0;
    ja_machine = Array.make (max 1 n) 0;
    ja_f = Array.make (max 1 (ja_floats * n)) 0.0;
    ja_len = 0;
    depth = 0;
    mgen = 0;
    mstamp = Array.make m 0;
    mold = Array.make m 0.0;
    mdelta = Array.make m 0.0;
    touched = Array.make m 0;
    n_touched = 0;
    tgen = 0;
    tstamp = Array.make n 0;
    xnew = Array.make n nan;
    aff = Array.make n 0;
    n_aff = 0;
    stack = Array.make n 0;
    wrow = Array.init n (fun i -> Array.init m (fun u -> Instance.w inst i u));
    frow = Array.init n (fun i -> Array.init m (fun u -> Instance.f inst i u));
  }

let check_task t i = if i < 0 || i >= t.n then invalid_arg "State: task out of range"
let check_machine t u = if u < 0 || u >= t.m then invalid_arg "State: machine out of range"
let instance t = t.inst

let machine_of t i =
  check_task t i;
  t.assign.(i)

let x t i =
  check_task t i;
  t.x.(i)

let[@inline] machine_load t u =
  check_machine t u;
  Kahan.total t.load.(u)

let[@inline] tasks_on t u =
  check_machine t u;
  t.ntasks.(u)

let[@inline] total_load t = Kahan.total t.tload

let hosts_type t ~machine ~ty =
  check_machine t machine;
  if ty < 0 || ty >= t.p then invalid_arg "State: type out of range";
  t.tcount.((machine * t.p) + ty) > 0

let move_allowed t ~task ~machine =
  check_task t task;
  check_machine t machine;
  let ty = Workflow.ttype t.wf task in
  let own = if t.assign.(task) = machine then 1 else 0 in
  t.ntasks.(machine) - own = t.tcount.((machine * t.p) + ty) - own

let refresh_period t =
  if not t.period_valid then begin
    let mx = ref 0.0 in
    for u = 0 to t.m - 1 do
      let lu = Kahan.total t.load.(u) in
      if lu > !mx then mx := lu
    done;
    t.period <- !mx;
    t.period_valid <- true
  end

let period t =
  refresh_period t;
  t.period

let is_complete t = Array.for_all (fun u -> u >= 0) t.assign
let to_array t = Array.copy t.assign

let mapping t =
  if not (is_complete t) then invalid_arg "State.mapping: incomplete assignment";
  Mapping.of_array t.inst t.assign

let undo_depth t = t.depth

let reset t =
  Array.fill t.assign 0 t.n (-1);
  Array.fill t.x 0 t.n nan;
  Array.iter Kahan.reset t.load;
  Kahan.reset t.tload;
  Array.fill t.extra 0 t.m 0.0;
  Array.fill t.tcount 0 (t.m * t.p) 0;
  Array.fill t.ntasks 0 t.m 0;
  t.period <- 0.0;
  t.period_valid <- true;
  t.journal <- [];
  t.ja_len <- 0;
  t.depth <- 0

let of_mapping inst mp =
  let t = create inst in
  let xs = Products.x inst mp in
  (* Loads accumulate in increasing task order, exactly like
     [Period.machine_periods], so the initial period is bit-identical. *)
  for i = 0 to t.n - 1 do
    let u = Mapping.machine mp i in
    t.assign.(i) <- u;
    t.x.(i) <- xs.(i);
    Kahan.add t.load.(u) (xs.(i) *. Instance.w inst i u);
    Kahan.add t.tload (xs.(i) *. Instance.w inst i u);
    let ti = (u * t.p) + Workflow.ttype t.wf i in
    t.tcount.(ti) <- t.tcount.(ti) + 1;
    t.ntasks.(u) <- t.ntasks.(u) + 1
  done;
  t.period_valid <- false;
  refresh_period t;
  t

(* ------------------------------------------------------------------ *)
(* Backward-order assignment                                           *)
(* ------------------------------------------------------------------ *)

let[@inline] x_succ t task =
  match Workflow.successor t.wf task with
  | None -> 1.0
  | Some j ->
    if t.assign.(j) < 0 then invalid_arg "State: successor not yet assigned"
    else t.x.(j)

let[@inline] x_candidate t ~task ~machine =
  check_task t task;
  check_machine t machine;
  x_succ t task /. (1.0 -. t.frow.(task).(machine))

(* Non-optional variant for the branch-and-bound inner loop: an optional
   float argument wraps in [Some] (an allocation) at every call site. *)
let[@inline] try_assign_with t ~extra ~task ~machine =
  let xc = x_candidate t ~task ~machine in
  machine_load t machine +. (xc *. t.wrow.(task).(machine)) +. extra

let try_assign ?(extra = 0.0) t ~task ~machine = try_assign_with t ~extra ~task ~machine

(* The [jtag] byte per depth is the only journal structure whose size is
   not bounded by [n] (Bulk ops from long local searches accumulate); grow
   it by doubling. *)
let ensure_tag_capacity t =
  if t.depth >= Bytes.length t.jtag then begin
    let nb = Bytes.make (2 * Bytes.length t.jtag) '\000' in
    Bytes.blit t.jtag 0 nb 0 (Bytes.length t.jtag);
    t.jtag <- nb
  end

let assign_task_with t ~extra ~task ~machine =
  check_task t task;
  check_machine t machine;
  if t.assign.(task) >= 0 then invalid_arg "State.assign_task: task already assigned";
  let xi = x_succ t task /. (1.0 -. t.frow.(task).(machine)) in
  refresh_period t;
  ensure_tag_capacity t;
  (* Journal into the flat arrays: no allocation on this path. *)
  Bytes.unsafe_set t.jtag t.depth '\000';
  let e = t.ja_len in
  t.ja_task.(e) <- task;
  t.ja_machine.(e) <- machine;
  let base = ja_floats * e in
  t.ja_f.(base) <- Kahan.raw_sum t.load.(machine);
  t.ja_f.(base + 1) <- Kahan.raw_comp t.load.(machine);
  t.ja_f.(base + 2) <- t.extra.(machine);
  t.ja_f.(base + 3) <- t.period;
  t.ja_f.(base + 4) <- Kahan.raw_sum t.tload;
  t.ja_f.(base + 5) <- Kahan.raw_comp t.tload;
  t.ja_len <- e + 1;
  t.assign.(task) <- machine;
  t.x.(task) <- xi;
  Kahan.add t.load.(machine) ((xi *. t.wrow.(task).(machine)) +. extra);
  Kahan.add t.tload ((xi *. t.wrow.(task).(machine)) +. extra);
  t.extra.(machine) <- t.extra.(machine) +. extra;
  let ti = (machine * t.p) + Workflow.ttype t.wf task in
  t.tcount.(ti) <- t.tcount.(ti) + 1;
  t.ntasks.(machine) <- t.ntasks.(machine) + 1;
  (* Loads only grow under assignment, so the cached max updates in O(1). *)
  let lu = Kahan.total t.load.(machine) in
  if lu > t.period then t.period <- lu;
  t.depth <- t.depth + 1

let assign_task ?(extra = 0.0) t ~task ~machine = assign_task_with t ~extra ~task ~machine

(* ------------------------------------------------------------------ *)
(* Tentative evaluation machinery                                      *)
(* ------------------------------------------------------------------ *)

let begin_eval t =
  t.mgen <- t.mgen + 1;
  t.n_touched <- 0;
  t.tgen <- t.tgen + 1;
  t.n_aff <- 0

let touch t v =
  if t.mstamp.(v) <> t.mgen then begin
    t.mstamp.(v) <- t.mgen;
    t.mold.(v) <- Kahan.total t.load.(v);
    t.mdelta.(v) <- 0.0;
    t.touched.(t.n_touched) <- v;
    t.n_touched <- t.n_touched + 1
  end

let stamp_task t j xj' =
  if t.tstamp.(j) <> t.tgen then begin
    t.tstamp.(j) <- t.tgen;
    t.aff.(t.n_aff) <- j;
    t.n_aff <- t.n_aff + 1
  end;
  t.xnew.(j) <- xj'

(* Tentative system period from the scratch deltas.  When none of the
   touched machines attained the cached maximum, the untouched maximum is
   the cached period itself and no scan is needed; otherwise one O(m) pass
   over the untouched machines recovers it. *)
let tentative_period t =
  refresh_period t;
  let mx = ref 0.0 in
  let touched_had_max = ref false in
  for k = 0 to t.n_touched - 1 do
    let v = t.touched.(k) in
    if t.mold.(v) >= t.period then touched_had_max := true;
    let nv = t.mold.(v) +. t.mdelta.(v) in
    if nv > !mx then mx := nv
  done;
  if not !touched_had_max then Float.max t.period !mx
  else begin
    let best = ref !mx in
    for v = 0 to t.m - 1 do
      if t.mstamp.(v) <> t.mgen then begin
        let lv = Kahan.total t.load.(v) in
        if lv > !best then best := lv
      end
    done;
    Float.max 0.0 !best
  end

(* Walk the upstream subtree of [task] for a move to [machine].  Every x
   in the subtree is the product of the per-task factors on its path to
   the sink; only [task]'s factor changes, so they all scale by the same
   ratio [r].  Unassigned tasks (partial states) are skipped: by the
   downstream-closure invariant their whole upstream cone is unassigned. *)
let eval_move t ~task ~machine =
  check_task t task;
  check_machine t machine;
  if t.assign.(task) < 0 then invalid_arg "State: task not assigned";
  begin_eval t;
  let old_u = t.assign.(task) in
  let r =
    (1.0 -. t.frow.(task).(old_u)) /. (1.0 -. t.frow.(task).(machine))
  in
  let xi = t.x.(task) in
  let xi' = xi *. r in
  stamp_task t task xi';
  touch t old_u;
  t.mdelta.(old_u) <- t.mdelta.(old_u) -. (xi *. t.wrow.(task).(old_u));
  touch t machine;
  t.mdelta.(machine) <- t.mdelta.(machine) +. (xi' *. t.wrow.(task).(machine));
  let sp = ref 0 in
  let push j =
    t.stack.(!sp) <- j;
    incr sp
  in
  List.iter push (Workflow.predecessors t.wf task);
  while !sp > 0 do
    decr sp;
    let j = t.stack.(!sp) in
    if t.assign.(j) >= 0 then begin
      let v = t.assign.(j) in
      let xj = t.x.(j) in
      let xj' = xj *. r in
      stamp_task t j xj';
      touch t v;
      t.mdelta.(v) <- t.mdelta.(v) +. ((xj' -. xj) *. t.wrow.(j).(v));
      List.iter push (Workflow.predecessors t.wf j)
    end
  done

(* Group swap: every assigned task on [u] or [v] changes machine, and any
   task whose successor's x changed must be re-derived too.  One pass in
   backward order visits successors before predecessors. *)
let eval_swap t ~u ~v =
  check_machine t u;
  check_machine t v;
  begin_eval t;
  for k = 0 to t.n - 1 do
    let j = t.order.(k) in
    let uj = t.assign.(j) in
    if uj >= 0 then begin
      let nj = if uj = u then v else if uj = v then u else uj in
      let succ_affected =
        match Workflow.successor t.wf j with
        | None -> false
        | Some s -> t.tstamp.(s) = t.tgen
      in
      if nj <> uj || succ_affected then begin
        let xs =
          match Workflow.successor t.wf j with
          | None -> 1.0
          | Some s -> if t.tstamp.(s) = t.tgen then t.xnew.(s) else t.x.(s)
        in
        let xj' = xs /. (1.0 -. t.frow.(j).(nj)) in
        stamp_task t j xj';
        touch t uj;
        t.mdelta.(uj) <- t.mdelta.(uj) -. (t.x.(j) *. t.wrow.(j).(uj));
        touch t nj;
        t.mdelta.(nj) <- t.mdelta.(nj) +. (xj' *. t.wrow.(j).(nj))
      end
    end
  done

let try_move t ~task ~machine =
  eval_move t ~task ~machine;
  tentative_period t

let try_swap t ~u ~v =
  eval_swap t ~u ~v;
  tentative_period t

(* Commit the scratch evaluation: journal the touched footprint, write the
   new x values, fold each machine's aggregated delta into its compensated
   load, and apply the assignment changes ([changes] lists task ->
   new machine; entries whose machine is unchanged are ignored). *)
let commit t changes =
  let xs =
    Array.init t.n_aff (fun k ->
        let j = t.aff.(k) in
        (j, t.x.(j)))
  in
  let loads =
    Array.init t.n_touched (fun k ->
        let v = t.touched.(k) in
        let s, c = Kahan.snapshot t.load.(v) in
        (v, s, c))
  in
  let assigns = ref [] and tcounts = ref [] and ntasks = ref [] in
  List.iter
    (fun (i, nu) ->
      let ou = t.assign.(i) in
      if nu <> ou then begin
        let ty = Workflow.ttype t.wf i in
        assigns := (i, ou) :: !assigns;
        t.assign.(i) <- nu;
        let oi = (ou * t.p) + ty and ni = (nu * t.p) + ty in
        tcounts := (oi, t.tcount.(oi)) :: !tcounts;
        t.tcount.(oi) <- t.tcount.(oi) - 1;
        tcounts := (ni, t.tcount.(ni)) :: !tcounts;
        t.tcount.(ni) <- t.tcount.(ni) + 1;
        ntasks := (ou, t.ntasks.(ou)) :: !ntasks;
        t.ntasks.(ou) <- t.ntasks.(ou) - 1;
        ntasks := (nu, t.ntasks.(nu)) :: !ntasks;
        t.ntasks.(nu) <- t.ntasks.(nu) + 1
      end)
    changes;
  for k = 0 to t.n_aff - 1 do
    let j = t.aff.(k) in
    t.x.(j) <- t.xnew.(j)
  done;
  let prev_tload = Kahan.snapshot t.tload in
  for k = 0 to t.n_touched - 1 do
    let v = t.touched.(k) in
    Kahan.add t.load.(v) t.mdelta.(v);
    Kahan.add t.tload t.mdelta.(v)
  done;
  ensure_tag_capacity t;
  Bytes.unsafe_set t.jtag t.depth '\001';
  t.journal <-
    Bulk
      {
        xs;
        loads;
        assigns = !assigns;
        tcounts = !tcounts;
        ntasks = !ntasks;
        prev_period = t.period;
        prev_valid = t.period_valid;
        prev_tload;
      }
    :: t.journal;
  t.depth <- t.depth + 1;
  t.period_valid <- false

let apply_move t ~task ~machine =
  eval_move t ~task ~machine;
  commit t [ (task, machine) ]

let apply_swap t ~u ~v =
  eval_swap t ~u ~v;
  let changes = ref [] in
  for k = 0 to t.n_aff - 1 do
    let j = t.aff.(k) in
    if t.assign.(j) = u then changes := (j, v) :: !changes
    else if t.assign.(j) = v then changes := (j, u) :: !changes
  done;
  commit t !changes

let undo t =
  if t.depth = 0 then invalid_arg "State.undo: empty journal";
  t.depth <- t.depth - 1;
  if Bytes.unsafe_get t.jtag t.depth = '\000' then begin
    (* Flat assignment entry: restore from the parallel arrays. *)
    let e = t.ja_len - 1 in
    t.ja_len <- e;
    let task = t.ja_task.(e) and machine = t.ja_machine.(e) in
    let base = ja_floats * e in
    t.assign.(task) <- -1;
    t.x.(task) <- nan;
    Kahan.restore_raw t.load.(machine) ~sum:t.ja_f.(base) ~comp:t.ja_f.(base + 1);
    t.extra.(machine) <- t.ja_f.(base + 2);
    t.period <- t.ja_f.(base + 3);
    Kahan.restore_raw t.tload ~sum:t.ja_f.(base + 4) ~comp:t.ja_f.(base + 5);
    let ti = (machine * t.p) + Workflow.ttype t.wf task in
    t.tcount.(ti) <- t.tcount.(ti) - 1;
    t.ntasks.(machine) <- t.ntasks.(machine) - 1;
    t.period_valid <- true
  end
  else
    match t.journal with
    | [] -> assert false
    | Bulk b :: rest ->
      t.journal <- rest;
      Array.iter (fun (j, xv) -> t.x.(j) <- xv) b.xs;
      Array.iter (fun (v, s, c) -> Kahan.restore t.load.(v) (s, c)) b.loads;
      Kahan.restore t.tload b.prev_tload;
      List.iter (fun (i, ou) -> t.assign.(i) <- ou) b.assigns;
      List.iter (fun (idx, c) -> t.tcount.(idx) <- c) b.tcounts;
      List.iter (fun (u, c) -> t.ntasks.(u) <- c) b.ntasks;
      t.period <- b.prev_period;
      t.period_valid <- b.prev_valid

(* ------------------------------------------------------------------ *)
(* Consistency check (debug/test)                                      *)
(* ------------------------------------------------------------------ *)

let check ?(tol = 1e-9) t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let close a b = Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.abs b) in
  let x_ref = Array.make t.n nan in
  Array.iter
    (fun i ->
      if t.assign.(i) >= 0 then begin
        let u = t.assign.(i) in
        let downstream =
          match Workflow.successor t.wf i with
          | None -> 1.0
          | Some j ->
            if t.assign.(j) < 0 then
              fail "State.check: task %d assigned but its successor %d is not" i j
            else x_ref.(j)
        in
        x_ref.(i) <- downstream /. (1.0 -. Instance.f t.inst i u);
        if not (close t.x.(i) x_ref.(i)) then
          fail "State.check: x(%d) drifted: %.17g vs %.17g" i t.x.(i) x_ref.(i)
      end)
    t.order;
  let acc = Array.init t.m (fun _ -> Kahan.create ()) in
  for i = 0 to t.n - 1 do
    let u = t.assign.(i) in
    if u >= 0 then Kahan.add acc.(u) (x_ref.(i) *. Instance.w t.inst i u)
  done;
  let ref_count = Array.make (t.m * t.p) 0 and ref_ntasks = Array.make t.m 0 in
  for i = 0 to t.n - 1 do
    let u = t.assign.(i) in
    if u >= 0 then begin
      let ti = (u * t.p) + Workflow.ttype t.wf i in
      ref_count.(ti) <- ref_count.(ti) + 1;
      ref_ntasks.(u) <- ref_ntasks.(u) + 1
    end
  done;
  let max_load = ref 0.0 in
  for u = 0 to t.m - 1 do
    let expect = Kahan.total acc.(u) +. t.extra.(u) in
    let got = Kahan.total t.load.(u) in
    if not (close got expect) then
      fail "State.check: load(%d) drifted: %.17g vs %.17g" u got expect;
    if got > !max_load then max_load := got;
    if t.ntasks.(u) <> ref_ntasks.(u) then
      fail "State.check: ntasks(%d) = %d, expected %d" u t.ntasks.(u) ref_ntasks.(u);
    for ty = 0 to t.p - 1 do
      let ti = (u * t.p) + ty in
      if t.tcount.(ti) <> ref_count.(ti) then
        fail "State.check: tcount(%d, %d) = %d, expected %d" u ty t.tcount.(ti)
          ref_count.(ti)
    done
  done;
  if t.period_valid && not (close t.period !max_load) then
    fail "State.check: cached period %.17g, loads say %.17g" t.period !max_load;
  let tsum = ref 0.0 in
  for u = 0 to t.m - 1 do
    tsum := !tsum +. Kahan.total t.load.(u)
  done;
  if not (close (Kahan.total t.tload) !tsum) then
    fail "State.check: total load drifted: %.17g vs %.17g" (Kahan.total t.tload) !tsum
