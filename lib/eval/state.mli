(** Incremental evaluation of mappings under the period objective.

    All the solvers in this repository score candidate allocations with the
    same quantities: the product counts [x_i] (paper Equation (2)), the
    per-machine loads [sum x_i * w(i,u)] and their maximum, the period.
    This module owns that evaluation state {e mutably} and re-evaluates a
    candidate change in time proportional to what the change actually
    touches, instead of the O(n + m) full recomputation the first version
    of the local search performed per candidate:

    - a {b task move} [i -> u] rescales the product counts of [i]'s
      {e upstream subtree} (the tasks whose products flow through [i]) by
      the ratio [(1 - f(i, old)) / (1 - f(i, u))] and shifts [i]'s own
      contribution between two machines — O(|subtree| + touched machines);
    - a {b machine group swap} [u <-> v] re-derives the x of every task
      sitting on [u] or [v] and of their upstream subtrees — O(affected);
    - a {b backward-order assignment} (heuristics engine, branch-and-bound)
      extends a partial state by one task in O(1).

    [try_*] functions evaluate without committing; [apply_*] and
    {!assign_task} commit and push an entry onto an undo journal, so search
    procedures (annealing, depth-first branch-and-bound) backtrack with
    {!undo} in time proportional to what the change touched.

    Loads are held in compensated (Kahan–Babuska) accumulators and the
    journal stores exact accumulator snapshots, so undo restores state
    bit-for-bit; drift from long apply sequences stays at ulp scale and is
    checked against from-scratch recomputation by {!check}.

    Partial states (some tasks unassigned) are supported with the
    {e downstream-closure} invariant: whenever a task is assigned, its
    successor is too — the natural state of all backward-order solvers. *)

type t

(** {1 Construction} *)

(** [create inst] is the empty state: no task assigned, all loads zero. *)
val create : Mf_core.Instance.t -> t

(** [of_mapping inst mp] is the fully-assigned state evaluating [mp]; its
    {!period} equals [Period.period inst mp] bit-for-bit. *)
val of_mapping : Mf_core.Instance.t -> Mf_core.Mapping.t -> t

(** [reset st] clears every assignment, load and the undo journal. *)
val reset : t -> unit

(** {1 Read access} *)

val instance : t -> Mf_core.Instance.t

(** [machine_of st i] is the machine of task [i], or [-1] if unassigned. *)
val machine_of : t -> int -> int

(** [x st i] is the current product count of task [i] ([nan] when [i] is
    unassigned). *)
val x : t -> int -> float

(** [machine_load st u] is machine [u]'s current period contribution
    (including any {e extra} costs injected via {!assign_task}). *)
val machine_load : t -> int -> float

(** [tasks_on st u] is the number of tasks currently assigned to [u]. *)
val tasks_on : t -> int -> int

(** [total_load st] is the sum of all machine loads (including injected
    {e extra} costs), maintained incrementally in a compensated
    accumulator and restored bit-for-bit by {!undo}.  Dividing by the
    machine count gives the averaging ("packing") lower bound used by the
    exact branch-and-bound. *)
val total_load : t -> float

(** [hosts_type st ~machine ~ty] is true when some task of type [ty] is
    currently assigned to [machine]. *)
val hosts_type : t -> machine:int -> ty:int -> bool

(** [move_allowed st ~task ~machine] is true when moving [task] to
    [machine] keeps the mapping specialized: every {e other} task on
    [machine] shares [task]'s type.  O(1). *)
val move_allowed : t -> task:int -> machine:int -> bool

(** [period st] is the current max load over machines (0 when empty).
    Amortised O(1): a cached maximum is maintained, invalidated by
    committed moves and recomputed lazily in O(m). *)
val period : t -> float

val is_complete : t -> bool

(** [to_array st] is a copy of the allocation array ([-1] = unassigned). *)
val to_array : t -> int array

(** [mapping st] is the completed mapping.
    @raise Invalid_argument if some task is unassigned. *)
val mapping : t -> Mf_core.Mapping.t

val undo_depth : t -> int

(** {1 Backward-order assignment (partial states)} *)

(** [x_candidate st ~task ~machine] is the product count [task] would get
    on [machine]: [x_succ / (1 - f(task, machine))].
    @raise Invalid_argument if [task]'s successor is unassigned. *)
val x_candidate : t -> task:int -> machine:int -> float

(** [try_assign ?extra st ~task ~machine] is the load [machine] would
    carry after receiving the unassigned [task] (plus [extra] flat cost,
    e.g. a reconfiguration penalty) — the [exec_u] of the paper's
    Algorithms 2–6. *)
val try_assign : ?extra:float -> t -> task:int -> machine:int -> float

(** [try_assign_with] / [assign_task_with] are the same operations with a
    required [~extra] argument: the optional argument forces a [Some]
    allocation at every call, which matters in the branch-and-bound inner
    loop. *)
val try_assign_with : t -> extra:float -> task:int -> machine:int -> float

val assign_task_with : t -> extra:float -> task:int -> machine:int -> unit

(** [assign_task ?extra st ~task ~machine] commits the assignment of a
    currently-unassigned task, journalling it for {!undo}.  O(1).
    @raise Invalid_argument if [task] is already assigned or its successor
    is not. *)
val assign_task : ?extra:float -> t -> task:int -> machine:int -> unit

(** {1 Move evaluation (complete or partial states)} *)

(** [try_move st ~task ~machine] is the system period if [task] moved to
    [machine], leaving the state untouched.  O(subtree + touched
    machines), falling back to one O(m) scan only when the move displaces
    the current critical machine. *)
val try_move : t -> task:int -> machine:int -> float

(** [apply_move st ~task ~machine] commits the move and journals it. *)
val apply_move : t -> task:int -> machine:int -> unit

(** [try_swap st ~u ~v] is the system period if machines [u] and [v]
    exchanged their task groups (always type-safe for specialized
    mappings), leaving the state untouched. *)
val try_swap : t -> u:int -> v:int -> float

(** [apply_swap st ~u ~v] commits the group swap and journals it. *)
val apply_swap : t -> u:int -> v:int -> unit

(** [undo st] reverts the most recent committed operation ({!assign_task},
    {!apply_move} or {!apply_swap}), restoring loads bit-for-bit.
    @raise Invalid_argument if the journal is empty. *)
val undo : t -> unit

(** {1 Debugging} *)

(** [check ?tol st] asserts that the incremental state matches a
    from-scratch recomputation: x within [tol] (relative), loads within
    [tol], type counts exactly, cached period within [tol].  Intended for
    tests and debugging only — it costs O(n + m·p).
    @raise Failure with a diagnostic on the first mismatch. *)
val check : ?tol:float -> t -> unit
