(** Local-search improvement of specialized mappings (extension beyond the
    paper).

    Starting from any specialized mapping, two neighbourhoods are explored
    with steepest descent:

    - {b task moves}: reassign one task to another machine that is empty or
      already dedicated to its type;
    - {b group swaps}: exchange the machines of two dedicated groups
      (always type-safe).

    Each round applies the best improving move; the search stops when no
    move improves the period or [max_rounds] is reached.  The result never
    has a larger period than the input, and remains specialized.

    Candidate moves are scored incrementally through {!Mf_eval.State}
    (O(subtree + touched machines) per candidate); see
    {!improve_reference} for the original full-recomputation baseline. *)

val improve :
  ?max_rounds:int -> Mf_core.Instance.t -> Mf_core.Mapping.t -> Mf_core.Mapping.t

(** [improve_reference] is the original implementation evaluating every
    candidate by a from-scratch [Period.period] (O(n + m) per candidate).
    Kept as the differential-testing and benchmarking baseline; up to
    floating-point noise it explores the same descent path as
    {!improve}. *)
val improve_reference :
  ?max_rounds:int -> Mf_core.Instance.t -> Mf_core.Mapping.t -> Mf_core.Mapping.t
