module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Rng = Mf_prng.Rng
module State = Mf_eval.State

type params = { initial_temperature : float; cooling : float; steps : int }

let default_params = { initial_temperature = 0.5; cooling = 0.995; steps = 3000 }

type proposal = Move of int * int | Swap of int * int

(* Draw a random neighbour.  The RNG consumption mirrors the reference
   implementation draw for draw, so both explore the same trajectory. *)
let propose rng st n m =
  if m > 1 && (n < 2 || Rng.bool rng) then begin
    (* Task move: random task to a random machine that accepts its type. *)
    let i = Rng.int rng n in
    let u = Rng.int rng m in
    if u = State.machine_of st i then None
    else if not (State.move_allowed st ~task:i ~machine:u) then None
    else Some (Move (i, u))
  end
  else begin
    (* Group swap: exchange two machines wholesale (always type-safe). *)
    let u = Rng.int rng m and v = Rng.int rng m in
    if u = v then None else Some (Swap (u, v))
  end

let run ?(params = default_params) rng inst mp =
  Mapping.check inst mp Mapping.Specialized;
  let n = Instance.task_count inst and m = Instance.machines inst in
  let st = State.of_mapping inst mp in
  let current = ref (State.period st) in
  let best = ref (State.to_array st) in
  let best_period = ref !current in
  let temperature = ref (params.initial_temperature *. !current) in
  for _ = 1 to params.steps do
    (match propose rng st n m with
    | None -> ()
    | Some prop ->
      let candidate =
        match prop with
        | Move (i, u) -> State.try_move st ~task:i ~machine:u
        | Swap (u, v) -> State.try_swap st ~u ~v
      in
      let delta = candidate -. !current in
      let accept =
        delta <= 0.0
        || (!temperature > 0.0 && Rng.float rng 1.0 < exp (-.delta /. !temperature))
      in
      if accept then begin
        (match prop with
        | Move (i, u) -> State.apply_move st ~task:i ~machine:u
        | Swap (u, v) -> State.apply_swap st ~u ~v);
        current := State.period st;
        if !current < !best_period then begin
          best_period := !current;
          best := State.to_array st
        end
      end);
    temperature := !temperature *. params.cooling
  done;
  Mapping.of_array inst !best

(* ------------------------------------------------------------------ *)
(* Reference implementation                                            *)
(* ------------------------------------------------------------------ *)

(* The original annealer scoring every accepted proposal by a from-scratch
   Period.period on a mutated allocation array.  Kept as the
   differential-test baseline for [run]. *)

let propose_reference rng inst a =
  let n = Instance.task_count inst and m = Instance.machines inst in
  let wf = Instance.workflow inst in
  if m > 1 && (n < 2 || Rng.bool rng) then begin
    let i = Rng.int rng n in
    let u = Rng.int rng m in
    let original = a.(i) in
    if u = original then None
    else begin
      let ty = Workflow.ttype wf i in
      let compatible = ref true in
      Array.iteri
        (fun j uj ->
          if j <> i && uj = u && Workflow.ttype wf j <> ty then compatible := false)
        a;
      if not !compatible then None
      else begin
        a.(i) <- u;
        Some (fun () -> a.(i) <- original)
      end
    end
  end
  else begin
    let u = Rng.int rng m and v = Rng.int rng m in
    if u = v then None
    else begin
      let swap () =
        Array.iteri (fun j uj -> if uj = u then a.(j) <- v else if uj = v then a.(j) <- u) a
      in
      swap ();
      Some swap
    end
  end

let run_reference ?(params = default_params) rng inst mp =
  Mapping.check inst mp Mapping.Specialized;
  let a = Mapping.to_array mp in
  let period_of arr = Period.period inst (Mapping.of_array inst arr) in
  let current = ref (period_of a) in
  let best = ref (Array.copy a) in
  let best_period = ref !current in
  let temperature = ref (params.initial_temperature *. !current) in
  for _ = 1 to params.steps do
    (match propose_reference rng inst a with
    | None -> ()
    | Some undo ->
      let candidate = period_of a in
      let delta = candidate -. !current in
      let accept =
        delta <= 0.0
        || (!temperature > 0.0 && Rng.float rng 1.0 < exp (-.delta /. !temperature))
      in
      if accept then begin
        current := candidate;
        if candidate < !best_period then begin
          best_period := candidate;
          best := Array.copy a
        end
      end
      else undo ());
    temperature := !temperature *. params.cooling
  done;
  Mapping.of_array inst !best
