(** Binary search on the period — the skeleton shared by heuristics H2 and
    H3 (Algorithms 2 and 3).

    The search runs between 0 and {!Mf_core.Instance.period_upper_bound}
    (the "period of all the tasks on the slowest machine").  For each
    candidate period, tasks are assigned backward by a caller-supplied
    policy that must respect the period budget; a successful full
    assignment tightens the upper bound, a failure raises the lower bound.
    The search stops when the bracket closes below a 1e-6 {e relative}
    tolerance (or after 64 rounds).  The paper stops at an absolute 1 ms,
    which is scale-dependent: instances whose period bound is below 1 ms
    would never search at all, and very large ones would burn every round
    without converging — the relative stop makes the search
    scale-invariant. *)

(** A policy picks a machine for [task] given the current engine state and
    the period budget, or returns [None] when no machine fits. *)
type policy = Engine.t -> task:int -> budget:float -> int option

(** [run inst policy] returns the best mapping found.  The upper bound is
    always feasible, so a mapping is always returned when [m >= p].
    @raise Invalid_argument when [m < p]. *)
val run : Mf_core.Instance.t -> policy -> Mf_core.Mapping.t
