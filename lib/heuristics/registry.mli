(** The catalogue of specialized-mapping heuristics, keyed by the paper's
    names. *)

type t = H1 | H2 | H3 | H4 | H4w | H4f

(** All heuristics, in the paper's presentation order. *)
val all : t list

(** The informed heuristics (everything but the random baseline H1). *)
val informed : t list

val name : t -> string

(** [of_name s] parses a (case-insensitive) heuristic name. *)
val of_name : string -> t option

(** One-line description, as in Section 6.2. *)
val description : t -> string

(** [solve h ?seed inst] runs heuristic [h].  [seed] only matters for the
    randomised H1 (default 0).
    @raise Invalid_argument when [m < p]. *)
val solve : ?seed:int -> t -> Mf_core.Instance.t -> Mf_core.Mapping.t

(** [best ?seed inst] runs {e every} heuristic of {!all} and returns the
    mapping with the smallest period together with that period.  Ties keep
    the earliest heuristic in the catalogue order, so the result is
    deterministic.  This is the incumbent seed of the exact
    branch-and-bound: a tighter initial incumbent prunes exponentially
    more of the search tree than the cost of the extra heuristic runs.
    @raise Invalid_argument when [m < p]. *)
val best : ?seed:int -> Mf_core.Instance.t -> Mf_core.Mapping.t * float
