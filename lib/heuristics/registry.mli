(** The catalogue of specialized-mapping heuristics, keyed by the paper's
    names.

    {b Determinism contract.}  Every entry is a pure function of
    [(heuristic, instance, seed)]: same arguments, same mapping, on any
    machine and for any [--jobs] value of the surrounding run.  [seed]
    feeds the random draws of the randomized heuristics — today only H1;
    the informed heuristics H2..H4f ignore it — and defaults to
    {!default_seed} everywhere, so omitting it is itself deterministic.
    {!solve} and {!best} treat [seed] identically: [best] threads the
    caller's seed to {e every} catalogue entry (a caller-supplied seed is
    never silently replaced by the default for a subset of the runs). *)

type t = H1 | H2 | H3 | H4 | H4w | H4f

(** All heuristics, in the paper's presentation order. *)
val all : t list

(** The informed heuristics (everything but the random baseline H1). *)
val informed : t list

val name : t -> string

(** [of_name s] parses a heuristic name: case-insensitive, surrounding
    whitespace ignored.  Inverse of {!name} by construction — the parser
    is derived from the printed names of {!all}, so every printed name is
    accepted (a round-trip test pins this). *)
val of_name : string -> t option

(** One-line description, as in Section 6.2. *)
val description : t -> string

(** The seed used when callers omit [?seed] (0). *)
val default_seed : int

(** [solve h ?seed inst] runs heuristic [h] under the determinism
    contract above ([seed] defaults to {!default_seed}; only H1 consumes
    it today).
    @raise Invalid_argument when [m < p]. *)
val solve : ?seed:int -> t -> Mf_core.Instance.t -> Mf_core.Mapping.t

(** [best ?seed inst] runs {e every} heuristic of {!all} — each with the
    same [seed] — and returns the mapping with the smallest period
    together with that period.  Ties keep the earliest heuristic in the
    catalogue order, so the result is deterministic.  This is the
    incumbent seed of the exact branch-and-bound: a tighter initial
    incumbent prunes exponentially more of the search tree than the cost
    of the extra heuristic runs.
    @raise Invalid_argument when [m < p]. *)
val best : ?seed:int -> Mf_core.Instance.t -> Mf_core.Mapping.t * float
