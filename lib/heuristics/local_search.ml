module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module State = Mf_eval.State

(* Candidate moves are evaluated incrementally through Mf_eval.State: a
   task move rescales the x of its upstream subtree and shifts load
   between two machines, so each candidate costs O(subtree + touched
   machines) instead of the O(n + m) full period recomputation of the
   reference implementation below.  Enumeration order and tie-breaking
   match the reference exactly. *)

let best_task_move st current =
  let inst = State.instance st in
  let n = Instance.task_count inst and m = Instance.machines inst in
  let best = ref None in
  for i = 0 to n - 1 do
    let original = State.machine_of st i in
    for u = 0 to m - 1 do
      if u <> original && State.move_allowed st ~task:i ~machine:u then begin
        let p = State.try_move st ~task:i ~machine:u in
        let improves =
          match !best with None -> p < current | Some (_, _, bp) -> p < bp
        in
        if improves then best := Some (i, u, p)
      end
    done
  done;
  !best

let best_group_swap st current =
  let m = Instance.machines (State.instance st) in
  let best = ref None in
  for u = 0 to m - 1 do
    for v = u + 1 to m - 1 do
      let p = State.try_swap st ~u ~v in
      let improves = match !best with None -> p < current | Some (_, _, bp) -> p < bp in
      if improves then best := Some (u, v, p)
    done
  done;
  !best

let improve ?(max_rounds = 100) inst mp =
  let st = State.of_mapping inst mp in
  let current = ref (State.period st) in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < max_rounds do
    incr rounds;
    improved := false;
    let move = best_task_move st !current in
    let swap = best_group_swap st !current in
    let apply_move (i, u, _) =
      State.apply_move st ~task:i ~machine:u;
      current := State.period st;
      improved := true
    in
    let apply_swap (u, v, _) =
      State.apply_swap st ~u ~v;
      current := State.period st;
      improved := true
    in
    match (move, swap) with
    | None, None -> ()
    | Some mv, None -> apply_move mv
    | None, Some sw -> apply_swap sw
    | Some ((_, _, pm) as mv), Some ((_, _, ps) as sw) ->
      if pm <= ps then apply_move mv else apply_swap sw
  done;
  State.mapping st

(* ------------------------------------------------------------------ *)
(* Reference implementation                                            *)
(* ------------------------------------------------------------------ *)

(* The original full-recomputation search, kept as the differential-test
   and benchmark baseline: the mapping is a raw allocation array and every
   candidate is scored by a from-scratch Period.period, O(n + m) each. *)

let period_of inst a = Period.period inst (Mapping.of_array inst a)

let machine_accepts inst a ~u ~ty ~except =
  let wf = Instance.workflow inst in
  let ok = ref true in
  Array.iteri
    (fun i ui -> if i <> except && ui = u && Workflow.ttype wf i <> ty then ok := false)
    a;
  !ok

let best_task_move_reference inst a current =
  let wf = Instance.workflow inst in
  let n = Instance.task_count inst and m = Instance.machines inst in
  let best = ref None in
  for i = 0 to n - 1 do
    let ty = Workflow.ttype wf i in
    let original = a.(i) in
    for u = 0 to m - 1 do
      if u <> original && machine_accepts inst a ~u ~ty ~except:i then begin
        a.(i) <- u;
        let p = period_of inst a in
        a.(i) <- original;
        let improves =
          match !best with None -> p < current | Some (_, _, bp) -> p < bp
        in
        if improves then best := Some (i, u, p)
      end
    done
  done;
  !best

let best_group_swap_reference inst a current =
  let m = Instance.machines inst in
  let best = ref None in
  let swap u v =
    Array.iteri (fun i ui -> if ui = u then a.(i) <- v else if ui = v then a.(i) <- u) a
  in
  for u = 0 to m - 1 do
    for v = u + 1 to m - 1 do
      swap u v;
      let p = period_of inst a in
      swap u v;
      let improves = match !best with None -> p < current | Some (_, _, bp) -> p < bp in
      if improves then best := Some (u, v, p)
    done
  done;
  !best

let improve_reference ?(max_rounds = 100) inst mp =
  let a = Mapping.to_array mp in
  let current = ref (period_of inst a) in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < max_rounds do
    incr rounds;
    improved := false;
    let move = best_task_move_reference inst a !current in
    let swap = best_group_swap_reference inst a !current in
    let apply_move (i, u, p) =
      a.(i) <- u;
      current := p;
      improved := true
    in
    let apply_swap (u, v, p) =
      Array.iteri (fun i ui -> if ui = u then a.(i) <- v else if ui = v then a.(i) <- u) a;
      current := p;
      improved := true
    in
    match (move, swap) with
    | None, None -> ()
    | Some mv, None -> apply_move mv
    | None, Some sw -> apply_swap sw
    | Some ((_, _, pm) as mv), Some ((_, _, ps) as sw) ->
      if pm <= ps then apply_move mv else apply_swap sw
  done;
  Mapping.of_array inst a
