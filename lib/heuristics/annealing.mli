(** Simulated annealing over specialized mappings (extension beyond the
    paper).

    The state space is the set of valid specialized mappings; moves are
    random task reassignments and group swaps (the {!Local_search}
    neighbourhoods, sampled instead of enumerated).  The acceptance rule is
    Metropolis with a geometric cooling schedule.  The best state ever
    visited is returned, so the result never degrades the initial
    mapping. *)

type params = {
  initial_temperature : float;  (** in period units; scaled per instance *)
  cooling : float;  (** multiplier per step, in (0, 1) *)
  steps : int;
}

(** Defaults: temperature = half the initial period, cooling 0.995,
    3000 steps. *)
val default_params : params

(** [run ?params rng inst mp] anneals from the given specialized mapping.
    Proposals are scored incrementally through {!Mf_eval.State}; accepted
    ones are committed with [apply_move]/[apply_swap].
    @raise Invalid_argument if [mp] is not specialized for [inst]. *)
val run :
  ?params:params ->
  Mf_prng.Rng.t ->
  Mf_core.Instance.t ->
  Mf_core.Mapping.t ->
  Mf_core.Mapping.t

(** [run_reference] is the original implementation scoring every proposal
    by a from-scratch [Period.period].  It consumes the RNG draw for draw
    like {!run} and, up to floating-point noise, follows the same
    trajectory; kept for differential testing and benchmarking. *)
val run_reference :
  ?params:params ->
  Mf_prng.Rng.t ->
  Mf_core.Instance.t ->
  Mf_core.Mapping.t ->
  Mf_core.Mapping.t
