module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module State = Mf_eval.State

(* The x/load bookkeeping lives in the shared incremental-evaluation state
   (Mf_eval.State); the engine keeps only what is specific to the
   backward-assignment heuristics: the specialized-rule dedication of
   machines to types and the feasibility reservation counters. *)
type t = {
  inst : Instance.t;
  order : int array;
  st : State.t;
  dedicated : int array; (* machine -> type, or -1 *)
  type_covered : bool array;
  mutable free_machines : int;
  mutable n_types_to_go : int;
}

let create inst =
  let m = Instance.machines inst in
  let p = Instance.type_count inst in
  if m < p then
    invalid_arg "Engine: fewer machines than task types - no specialized mapping exists";
  {
    inst;
    order = Workflow.backward_order (Instance.workflow inst);
    st = State.create inst;
    dedicated = Array.make m (-1);
    type_covered = Array.make p false;
    free_machines = m;
    n_types_to_go = p;
  }

let instance eng = eng.inst
let order eng = Array.copy eng.order

let load eng u =
  if u < 0 || u >= Array.length eng.dedicated then
    invalid_arg "Engine.load: machine out of range";
  State.machine_load eng.st u

let dedicated eng u =
  if u < 0 || u >= Array.length eng.dedicated then
    invalid_arg "Engine.dedicated: machine out of range";
  if eng.dedicated.(u) < 0 then None else Some eng.dedicated.(u)

let x_succ eng task =
  match Workflow.successor (Instance.workflow eng.inst) task with
  | None -> 1.0
  | Some j ->
    if State.machine_of eng.st j < 0 then
      invalid_arg "Engine: successor not yet assigned (backward order violated)"
    else State.x eng.st j

let x_candidate eng ~task ~machine =
  x_succ eng task /. (1.0 -. Instance.f eng.inst task machine)

let exec_if eng ~task ~machine =
  State.machine_load eng.st machine
  +. (x_candidate eng ~task ~machine *. Instance.w eng.inst task machine)

let eligible eng ~task ~machine =
  let ty = Workflow.ttype (Instance.workflow eng.inst) task in
  let d = eng.dedicated.(machine) in
  if d >= 0 then d = ty
  else if not eng.type_covered.(ty) then true
  else eng.free_machines > eng.n_types_to_go

let eligible_machines eng ~task =
  List.filter
    (fun u -> eligible eng ~task ~machine:u)
    (List.init (Instance.machines eng.inst) Fun.id)

let assign eng ~task ~machine =
  if State.machine_of eng.st task >= 0 then
    invalid_arg "Engine.assign: task already assigned";
  if not (eligible eng ~task ~machine) then
    invalid_arg "Engine.assign: machine not eligible for this task";
  let ty = Workflow.ttype (Instance.workflow eng.inst) task in
  (* Raises the engine's backward-order diagnostic when the successor is
     still unassigned, before the state is touched. *)
  ignore (x_succ eng task);
  if eng.dedicated.(machine) < 0 then begin
    eng.dedicated.(machine) <- ty;
    eng.free_machines <- eng.free_machines - 1;
    if not eng.type_covered.(ty) then begin
      eng.type_covered.(ty) <- true;
      eng.n_types_to_go <- eng.n_types_to_go - 1
    end
  end;
  State.assign_task eng.st ~task ~machine

let reset eng =
  State.reset eng.st;
  Array.fill eng.dedicated 0 (Array.length eng.dedicated) (-1);
  Array.fill eng.type_covered 0 (Array.length eng.type_covered) false;
  eng.free_machines <- Instance.machines eng.inst;
  eng.n_types_to_go <- Instance.type_count eng.inst

let mapping eng =
  if not (State.is_complete eng.st) then
    invalid_arg "Engine.mapping: incomplete assignment";
  State.mapping eng.st

let free_machines eng = eng.free_machines
let types_to_go eng = eng.n_types_to_go
