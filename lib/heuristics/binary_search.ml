module Instance = Mf_core.Instance

type policy = Engine.t -> task:int -> budget:float -> int option

let try_assign_all eng policy ~budget =
  Engine.reset eng;
  let ok = ref true in
  let order = Engine.order eng in
  let i = ref 0 in
  while !ok && !i < Array.length order do
    let task = order.(!i) in
    (match policy eng ~task ~budget with
    | Some u -> Engine.assign eng ~task ~machine:u
    | None -> ok := false);
    incr i
  done;
  if !ok then Some (Engine.mapping eng) else None

let run inst policy =
  let eng = Engine.create inst in
  let upper = Instance.period_upper_bound inst in
  (* An unbounded budget always succeeds (every task has an eligible
     machine), guaranteeing a mapping even when rounding makes the finite
     upper bound land one ulp below the achievable load. *)
  let best =
    match try_assign_all eng policy ~budget:infinity with
    | Some mp -> ref mp
    | None -> invalid_arg "Binary_search: unbounded assignment failed"
  in
  let lo = ref 0.0 and hi = ref upper in
  let rounds = ref 0 in
  (* Relative convergence: an absolute 1 ms gap never lets instances with
     period bounds <= 1 ms into the loop (they would keep the unbounded
     mapping) and wastes all 64 rounds on large-scale ones.  1e-6 relative
     closes the bracket in ~20-50 rounds at any scale. *)
  let rel = 1e-6 in
  while !hi -. !lo > rel *. !hi && !rounds < 64 do
    incr rounds;
    let mid = !lo +. ((!hi -. !lo) /. 2.0) in
    match try_assign_all eng policy ~budget:mid with
    | Some mp ->
      best := mp;
      hi := mid
    | None -> lo := mid
  done;
  !best
