type t = H1 | H2 | H3 | H4 | H4w | H4f

let all = [ H1; H2; H3; H4; H4w; H4f ]
let informed = [ H2; H3; H4; H4w; H4f ]

let name = function
  | H1 -> "H1"
  | H2 -> "H2"
  | H3 -> "H3"
  | H4 -> "H4"
  | H4w -> "H4w"
  | H4f -> "H4f"

(* Derived from [name] over [all] so the parse/print pair cannot drift
   apart: every printed name round-trips by construction, and a new
   catalogue entry is parseable the moment it prints. *)
let of_name s =
  let target = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun h -> String.lowercase_ascii (name h) = target) all

let description = function
  | H1 -> "random grouping baseline"
  | H2 -> "binary search on the period, potential (rank) optimization"
  | H3 -> "binary search on the period, heterogeneous machines first"
  | H4 -> "greedy best performance (w * f * x)"
  | H4w -> "greedy fastest machine (w * x)"
  | H4f -> "greedy most reliable machine (f * x)"

let default_seed = 0

let solve ?(seed = default_seed) h inst =
  match h with
  | H1 -> H1_random.run (Mf_prng.Rng.create seed) inst
  | H2 -> H2_potential.run inst
  | H3 -> H3_heterogeneity.run inst
  | H4 -> H4_family.h4 inst
  | H4w -> H4_family.h4w inst
  | H4f -> H4_family.h4f inst

(* The same default as [solve], applied once here and threaded
   explicitly: every catalogue entry sees the caller's seed (H1 is the
   only consumer today, but the contract covers future randomized
   heuristics too) — a caller-supplied seed is never silently replaced
   by the default for a subset of the runs. *)
let best ?(seed = default_seed) inst =
  let pick =
    List.fold_left
      (fun acc h ->
        let mp = solve ~seed h inst in
        let p = Mf_core.Period.period inst mp in
        match acc with Some (_, bp) when bp <= p -> acc | _ -> Some (mp, p))
      None all
  in
  match pick with Some r -> r | None -> assert false
