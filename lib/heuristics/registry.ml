type t = H1 | H2 | H3 | H4 | H4w | H4f

let all = [ H1; H2; H3; H4; H4w; H4f ]
let informed = [ H2; H3; H4; H4w; H4f ]

let name = function
  | H1 -> "H1"
  | H2 -> "H2"
  | H3 -> "H3"
  | H4 -> "H4"
  | H4w -> "H4w"
  | H4f -> "H4f"

let of_name s =
  match String.lowercase_ascii s with
  | "h1" -> Some H1
  | "h2" -> Some H2
  | "h3" -> Some H3
  | "h4" -> Some H4
  | "h4w" -> Some H4w
  | "h4f" -> Some H4f
  | _ -> None

let description = function
  | H1 -> "random grouping baseline"
  | H2 -> "binary search on the period, potential (rank) optimization"
  | H3 -> "binary search on the period, heterogeneous machines first"
  | H4 -> "greedy best performance (w * f * x)"
  | H4w -> "greedy fastest machine (w * x)"
  | H4f -> "greedy most reliable machine (f * x)"

let solve ?(seed = 0) h inst =
  match h with
  | H1 -> H1_random.run (Mf_prng.Rng.create seed) inst
  | H2 -> H2_potential.run inst
  | H3 -> H3_heterogeneity.run inst
  | H4 -> H4_family.h4 inst
  | H4w -> H4_family.h4w inst
  | H4f -> H4_family.h4f inst

let best ?seed inst =
  let pick =
    List.fold_left
      (fun acc h ->
        let mp = solve ?seed h inst in
        let p = Mf_core.Period.period inst mp in
        match acc with Some (_, bp) when bp <= p -> acc | _ -> Some (mp, p))
      None all
  in
  match pick with Some r -> r | None -> assert false
