# Minimal CI entry points. `make verify` is what the gate runs.
# No ocamlformat in the toolchain image — formatting is by convention
# (see DESIGN.md §5), so there is no fmt target.

.PHONY: all build test verify bench bench-quick bench-exact clean

all: build

build:
	dune build

test:
	dune runtest

# Gate: build + tests, then the parallel-determinism check — the same
# experiment grid at --jobs 1 and --jobs 4 must produce byte-identical CSV —
# and the exact branch-and-bound differential suite (all pruning rules
# against brute force) under a timeout so a pruning regression that blows
# the search up fails fast instead of hanging the gate.
verify:
	dune build && dune runtest
	dune exec bin/mfopt.exe -- experiment fig6 --replicates 2 --jobs 1 --csv > _build/verify_j1.csv
	dune exec bin/mfopt.exe -- experiment fig6 --replicates 2 --jobs 4 --csv > _build/verify_j4.csv
	cmp _build/verify_j1.csv _build/verify_j4.csv
	timeout 60 dune exec test/test_exact.exe -- test dfs-differential
	@echo "verify OK: tests green, --jobs 1/4 byte-identical, exact differential suite green"

# Full benchmark run (figures + BENCH_eval.json + BENCH_parallel.json +
# bechamel micro-benchmarks).
bench:
	dune exec bench/main.exe

# Small-size benchmark: quick figure grids plus the parallel section,
# skipping the slow bechamel micro-benchmarks.
bench-quick:
	dune exec bench/main.exe -- --quick --skip-micro

# Exact-search benchmark only (writes BENCH_exact.json): node reduction vs
# the static baseline, solvable-size scan, --jobs identity, pruning ablation.
bench-exact:
	dune exec bench/main.exe -- --only none --skip-micro --skip-ablation --skip-eval --skip-parallel

clean:
	dune clean
