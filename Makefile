# Minimal CI entry points. `make verify` is what the gate runs.
# No ocamlformat in the toolchain image — formatting is by convention
# (see DESIGN.md §5), so there is no fmt target.

.PHONY: all build test verify bench bench-quick clean

all: build

build:
	dune build

test:
	dune runtest

# Gate: build + tests, then the parallel-determinism check — the same
# experiment grid at --jobs 1 and --jobs 4 must produce byte-identical CSV.
verify:
	dune build && dune runtest
	dune exec bin/mfopt.exe -- experiment fig6 --replicates 2 --jobs 1 --csv > _build/verify_j1.csv
	dune exec bin/mfopt.exe -- experiment fig6 --replicates 2 --jobs 4 --csv > _build/verify_j4.csv
	cmp _build/verify_j1.csv _build/verify_j4.csv
	@echo "verify OK: tests green, --jobs 1 and --jobs 4 byte-identical"

# Full benchmark run (figures + BENCH_eval.json + BENCH_parallel.json +
# bechamel micro-benchmarks).
bench:
	dune exec bench/main.exe

# Small-size benchmark: quick figure grids plus the parallel section,
# skipping the slow bechamel micro-benchmarks.
bench-quick:
	dune exec bench/main.exe -- --quick --skip-micro

clean:
	dune clean
