# Minimal CI entry points. `make verify` is what the gate runs.
# No ocamlformat in the toolchain image — formatting is by convention
# (see DESIGN.md §5), so there is no fmt target.

.PHONY: all build test verify bench clean

all: build

build:
	dune build

test:
	dune runtest

verify:
	dune build && dune runtest

# Full benchmark run (figures + BENCH_eval.json + bechamel micro-benchmarks).
bench:
	dune exec bench/main.exe

clean:
	dune clean
