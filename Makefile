# Minimal CI entry points. `make verify` is what the gate runs.
# No ocamlformat in the toolchain image — formatting is by convention
# (see DESIGN.md §5), so there is no fmt target.

.PHONY: all build test verify bench bench-quick bench-exact bench-lp \
  bench-solve bench-parallel bench-daemon bench-dynamic bench-regress \
  daemon-smoke clean fuzz fuzz-quick fuzz-replay

all: build

build:
	dune build

test:
	dune runtest

# Gate: build + tests, then the parallel-determinism check — the same
# experiment grid at --jobs 1 and --jobs 4 must produce byte-identical CSV —
# the pool stress suite (shutdown-while-busy, concurrent/nested map_array,
# exception-index determinism across chunk sizes) and the differential
# suites under timeouts so a regression that blows
# a search or a simplex up fails fast instead of hanging the gate: the exact
# branch-and-bound one (all pruning rules against brute force) and the LP one
# (float simplex against the exact-rational solver on 208 in-forest
# instances).
verify:
	dune build && dune runtest
	dune exec bin/mfopt.exe -- experiment fig6 --replicates 2 --jobs 1 --csv > _build/verify_j1.csv
	dune exec bin/mfopt.exe -- experiment fig6 --replicates 2 --jobs 4 --csv > _build/verify_j4.csv
	cmp _build/verify_j1.csv _build/verify_j4.csv
	timeout 60 dune exec test/test_parallel.exe -- test pool-stress
	timeout 60 dune exec test/test_exact.exe -- test dfs-differential
	timeout 60 dune exec test/test_lp.exe -- test lp-differential
	timeout 60 dune exec test/test_solve.exe -- test portfolio-differential
	timeout 60 sh scripts/daemon_smoke.sh
	$(MAKE) fuzz-quick
	$(MAKE) bench-regress
	@echo "verify OK: tests green, --jobs 1/4 byte-identical, differential suites green, daemon smoke green, fuzz matrix green, bench-regress green"

# Quick fuzz tier (deterministic, fixed seeds, <= 30 s): the full oracle
# matrix — eval, heuristics, exact-vs-brute, lp-vs-exact, sim-vs-analytic,
# metamorphic — plus the injected-bug canary and a replay of the committed
# seed corpus.  See DESIGN.md §12.
fuzz-quick:
	timeout 30 dune exec test/fuzz/fuzz_main.exe -- --quick

# Time-budgeted fuzz (default 120 s, override: make fuzz FUZZ_TIME=600).
# Each round draws fresh seeds; a failure writes a .repro seed file into
# test/fuzz/corpus — commit it to pin the regression.
FUZZ_TIME ?= 120
fuzz:
	dune build test/fuzz/fuzz_main.exe
	dune exec test/fuzz/fuzz_main.exe -- --time $(FUZZ_TIME)

# Replay the committed corpus only (fast; part of fuzz-quick as well).
fuzz-replay:
	dune exec test/fuzz/fuzz_main.exe -- --replay

# Full benchmark run (figures + every BENCH_*.json section + bechamel
# micro-benchmarks).
bench:
	dune exec bench/main.exe

# Small-size benchmark: quick figure grids plus the parallel section,
# skipping the slow bechamel micro-benchmarks.
bench-quick:
	dune exec bench/main.exe -- --quick --skip-micro

# Exact-search benchmark only (writes BENCH_exact.json): node reduction vs
# the static baseline, solvable-size scan, --jobs identity, pruning ablation.
bench-exact:
	dune exec bench/main.exe -- --only none --skip-micro --skip-ablation --skip-eval --skip-parallel --skip-lp --skip-solve --skip-daemon --skip-dynamic

# Splitting-LP benchmark only (writes BENCH_lp.json): solve time and pivot
# counts for n in {10, 20, 40, 80} under the throughput-form Devex solver,
# the Bland baseline on the same tableau, and the seed period-form + Bland
# combination, plus the fraction of seeds taking the rational fallback.
bench-lp:
	dune exec bench/main.exe -- --only none --skip-micro --skip-ablation --skip-eval --skip-parallel --skip-exact --skip-solve --skip-daemon --skip-dynamic

# Parallel-runtime benchmark only (writes BENCH_parallel.json): the
# fig5-shaped heuristic grid through the work-stealing pool at jobs
# 1/2/4/8 with the byte-identity assertion.  Always runs; on a 1-core
# machine the ratios are labelled overhead (speedup is not measurable).
bench-parallel:
	dune exec bench/main.exe -- --only none --skip-micro --skip-ablation --skip-eval --skip-exact --skip-lp --skip-solve --skip-daemon --skip-dynamic

# Unified-solver benchmark only (writes BENCH_solve.json): portfolio
# solves/sec and latency percentiles under a near-duplicate request storm
# (machine permutations + type relabelings of a few base instances), the
# canonical-cache hit rate, and a sampled cached-vs-fresh bit-identity check.
bench-solve:
	dune exec bench/main.exe -- --only none --skip-micro --skip-ablation --skip-eval --skip-parallel --skip-exact --skip-lp --skip-daemon --skip-dynamic

# Daemon benchmark only (writes BENCH_daemon.json): a concurrent client
# storm over socketpairs against a live scheduler — wire throughput and
# latency percentiles plus the shared cross-request cache hit rate.
bench-daemon:
	dune exec bench/main.exe -- --only none --skip-micro --skip-ablation --skip-eval --skip-parallel --skip-exact --skip-lp --skip-solve --skip-dynamic

# Dynamic-simulation benchmark only (writes BENCH_dynamic.json): the
# balanced 56-task chain under machine-0 breakdowns (mtbf 48 periods,
# mttr 16, one crew), do-nothing vs the online re-mapper, with the
# recovered fraction of the availability gap (gate >= 0.8) and a
# bit-identical replay check.  Quick tier runs as part of `bench-quick`.
bench-dynamic:
	dune exec bench/main.exe -- --only none --skip-micro --skip-ablation --skip-eval --skip-parallel --skip-exact --skip-lp --skip-solve --skip-daemon

# Daemon smoke (part of `make verify`, under timeout 60): start mfoptd on
# a temp socket, run three concurrent clients (solve, mid-solve CANCEL,
# malformed line), then SIGTERM and require exit 0 with a telemetry dump.
daemon-smoke:
	dune build bin/mfopt.exe bin/mfoptd.exe
	timeout 60 sh scripts/daemon_smoke.sh

# Regression gate over the committed benchmark numbers: re-runs the
# quick-tier reference measurements (revised-simplex pivot counts, the
# n=200 scaling row, the LP-bound exact-search scan at n in
# {14, 16, 18} / 500k nodes, and the breakdown/re-mapper scenario with
# its recovery >= 0.8 gate) and fails when any degrades past the
# tolerances recorded in the "regress" sections of BENCH_lp.json /
# BENCH_exact.json / BENCH_dynamic.json.  Part of `make verify`.
bench-regress:
	timeout 300 dune exec bench/main.exe -- --regress

clean:
	dune clean
