#!/bin/sh
# Daemon smoke test (part of `make verify`, under timeout 60):
#   - start mfoptd on a temp Unix socket
#   - run three concurrent clients: a normal solve, a mid-solve CANCEL,
#     and a malformed line (which must get a structured error while the
#     daemon stays up)
#   - SIGTERM the daemon and require exit 0 with a telemetry dump.
set -eu

MFOPT=${MFOPT:-_build/default/bin/mfopt.exe}
MFOPTD=${MFOPTD:-_build/default/bin/mfoptd.exe}
DIR=$(mktemp -d)
SOCK="$DIR/mfoptd.sock"
DPID=""
cleanup() {
    [ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

"$MFOPT" generate -o "$DIR/small.txt" --tasks 10 --types 3 --machines 5 --seed 11 >/dev/null
# big enough that a 2M-node search runs for tens of seconds uncancelled
"$MFOPT" generate -o "$DIR/big.txt" --tasks 22 --types 4 --machines 10 --seed 7 >/dev/null

"$MFOPTD" --socket "$SOCK" --workers 4 2> "$DIR/daemon.log" &
DPID=$!

i=0
while [ ! -S "$SOCK" ] && [ $i -lt 50 ]; do sleep 0.1; i=$((i + 1)); done
[ -S "$SOCK" ] || { echo "daemon-smoke: socket never appeared"; exit 1; }

"$MFOPT" client --socket "$SOCK" "$DIR/small.txt" --id ok --node-budget 20000 > "$DIR/c1.out" &
C1=$!
"$MFOPT" client --socket "$SOCK" "$DIR/big.txt" --id kill --node-budget 2000000 \
    --cancel-after-ms 300 > "$DIR/c2.out" &
C2=$!
"$MFOPT" client --socket "$SOCK" --raw "FROBNICATE 1" > "$DIR/c3.out" &
C3=$!

wait $C1 || { echo "daemon-smoke: solve client failed"; cat "$DIR/c1.out"; exit 1; }
wait $C2 || { echo "daemon-smoke: cancel client failed"; cat "$DIR/c2.out"; exit 1; }
# the malformed client exits non-zero by design: its one response is an ERR
if wait $C3; then
    echo "daemon-smoke: malformed line did not produce an error"
    cat "$DIR/c3.out"
    exit 1
fi

grep -q "^OK ok " "$DIR/c1.out" || { echo "daemon-smoke: no OK response"; cat "$DIR/c1.out"; exit 1; }
grep -q "^CANCELLED kill$" "$DIR/c2.out" || { echo "daemon-smoke: no CANCELLED response"; cat "$DIR/c2.out"; exit 1; }
grep -q "^ERR - bad-verb" "$DIR/c3.out" || { echo "daemon-smoke: no structured error"; cat "$DIR/c3.out"; exit 1; }

kill -TERM "$DPID"
STATUS=0
wait "$DPID" || STATUS=$?
DPID=""
[ "$STATUS" -eq 0 ] || { echo "daemon-smoke: daemon exited $STATUS on SIGTERM"; cat "$DIR/daemon.log"; exit 1; }
grep -q "mfoptd telemetry" "$DIR/daemon.log" || { echo "daemon-smoke: no telemetry dump"; cat "$DIR/daemon.log"; exit 1; }

echo "daemon-smoke OK: solve, cancel and malformed clients served; clean SIGTERM exit with telemetry"
