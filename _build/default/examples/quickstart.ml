(* Quickstart: build a small micro-factory instance by hand, map it with
   every heuristic, compare with the exact optimum, and check the analytic
   throughput against the discrete-event simulator.

   Run with: dune exec examples/quickstart.exe *)

module Workflow = Mf_core.Workflow
module Instance = Mf_core.Instance
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Products = Mf_core.Products
module Registry = Mf_heuristics.Registry

let () =
  (* A production line of 5 tasks and 3 types: pick (0), glue (1), pick,
     inspect (2), pick.  Types 0 appears three times: any machine
     specialized to "pick" may run all three tasks. *)
  let workflow = Workflow.chain ~types:[| 0; 1; 0; 2; 0 |] in

  (* Three machines; processing time depends on the task type and the
     machine, the failure probability on the task and the machine. *)
  let w_pick = [| 120.0; 150.0; 90.0 |] in
  let w_glue = [| 300.0; 220.0; 260.0 |] in
  let w_inspect = [| 80.0; 100.0; 140.0 |] in
  let inst =
    Instance.create ~workflow ~machines:3
      ~w:[| w_pick; w_glue; w_pick; w_inspect; w_pick |]
      ~f:
        [|
          [| 0.010; 0.015; 0.020 |];
          [| 0.030; 0.012; 0.025 |];
          [| 0.008; 0.014; 0.018 |];
          [| 0.002; 0.003; 0.004 |];
          [| 0.012; 0.016; 0.011 |];
        |]
  in
  Printf.printf "Instance: %d tasks, %d types, %d machines\n\n" (Instance.task_count inst)
    (Instance.type_count inst) (Instance.machines inst);

  (* Run the paper's six heuristics. *)
  Printf.printf "%-6s %12s %14s\n" "algo" "period(ms)" "throughput(/s)";
  List.iter
    (fun h ->
      let mp = Registry.solve h inst in
      Printf.printf "%-6s %12.2f %14.4f\n" (Registry.name h)
        (Period.period inst mp)
        (1000.0 *. Period.throughput inst mp))
    Registry.all;

  (* The exact optimum for reference (instances this small solve fast). *)
  let exact = Mf_exact.Dfs.specialized inst in
  Printf.printf "%-6s %12.2f %14.4f  (proved in %d nodes)\n\n" "exact" exact.Mf_exact.Dfs.period
    (1000.0 /. exact.Mf_exact.Dfs.period)
    exact.Mf_exact.Dfs.nodes;

  (* Inspect the optimal mapping: which machine does what, how many
     products must be fed in per finished product. *)
  let mp = exact.Mf_exact.Dfs.mapping in
  for u = 0 to Instance.machines inst - 1 do
    match Mapping.tasks_on mp ~u with
    | [] -> Printf.printf "machine M%d: idle\n" u
    | tasks ->
      Printf.printf "machine M%d: tasks %s\n" u
        (String.concat ", " (List.map (Printf.sprintf "T%d") tasks))
  done;
  let x = Products.x inst mp in
  Printf.printf "products processed per output: %s\n"
    (String.concat " " (Array.to_list (Array.mapi (Printf.sprintf "T%d:%.3f") x)));
  List.iter
    (fun (src, need) ->
      Printf.printf "to ship 1000 products, feed %d raw parts at T%d\n" need src)
    (Products.inputs_needed inst mp ~x_out:1000);

  (* Section 2 of the paper: guarantee the output count in probability,
     not just expectation. *)
  let guaranteed =
    Mf_reliability.Guarantee.inputs_for inst mp ~x_out:1000 ~confidence:0.999
  in
  Printf.printf "to ship 1000 products with 99.9%% confidence, feed %d raw parts\n" guaranteed;

  (* Validate the analytic model with the discrete-event simulator. *)
  let r = Mf_sim.Desim.run ~horizon:2.0e6 ~seed:7 inst mp in
  Printf.printf "\nsimulated throughput: %.4f /s (analytic %.4f /s, %d products out)\n"
    (1000.0 *. r.Mf_sim.Desim.throughput)
    (1000.0 *. Period.throughput inst mp)
    r.Mf_sim.Desim.outputs
