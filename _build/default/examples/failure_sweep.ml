(* Failure sweep: how does the achievable throughput degrade as cells
   become less reliable, and which heuristic copes best?  This is the
   question behind the paper's Figure 8, explored here as a sweep over the
   failure-rate ceiling instead of the task count.

   Run with: dune exec examples/failure_sweep.exe *)

module Instance = Mf_core.Instance
module Period = Mf_core.Period
module Registry = Mf_heuristics.Registry
module Gen = Mf_workload.Gen
module Rng = Mf_prng.Rng

let replicates = 20

let mean_period h params seed_base =
  let acc = ref 0.0 in
  for rep = 1 to replicates do
    let inst = Gen.chain (Rng.create (seed_base + rep)) params in
    acc := !acc +. Period.period inst (Registry.solve ~seed:rep h inst)
  done;
  !acc /. float_of_int replicates

let () =
  let heuristics = [ Registry.H2; Registry.H3; Registry.H4; Registry.H4w ] in
  Printf.printf
    "Mean period (ms) on chains of 40 tasks, 5 types, 10 machines, as the\n\
     failure ceiling grows (w ~ U[100,1000) ms, f ~ U[0, ceiling), %d instances per cell)\n\n"
    replicates;
  Printf.printf "%12s" "f ceiling";
  List.iter (fun h -> Printf.printf "%12s" (Registry.name h)) heuristics;
  Printf.printf "%12s\n" "best";
  List.iter
    (fun ceiling ->
      let params =
        {
          (Gen.default ~tasks:40 ~types:5 ~machines:10) with
          Gen.f_min = 0.0;
          Gen.f_max = ceiling;
        }
      in
      let means = List.map (fun h -> (h, mean_period h params (int_of_float (ceiling *. 1e4)))) heuristics in
      Printf.printf "%11.0f%%" (100.0 *. ceiling);
      List.iter (fun (_, m) -> Printf.printf "%12.0f" m) means;
      let best, _ =
        List.fold_left
          (fun (bh, bm) (h, m) -> if m < bm then (h, m) else (bh, bm))
          (Registry.H1, infinity) means
      in
      Printf.printf "%12s\n" (Registry.name best))
    [ 0.01; 0.02; 0.05; 0.10; 0.15; 0.20; 0.30 ];
  Printf.printf
    "\nReading: periods explode combinatorially with the failure ceiling - the\n\
     x_i factors compound along the chain - and the ranking between heuristics\n\
     shifts, as the paper observes on its Figure 8.\n"
