(* Watch assembly: an in-tree application with joins, mirroring the kind of
   micro-product the paper's introduction motivates.  Two sub-assemblies
   (movement and case) are built in parallel branches and joined, then the
   finished watch is inspected.

   The example shows: in-tree workflows, per-branch product counts, the
   effect of the mapping on the input feeds of each branch, and a simulation
   trace of the assembly cell.

   Run with: dune exec examples/watch_assembly.exe *)

module Workflow = Mf_core.Workflow
module Instance = Mf_core.Instance
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Products = Mf_core.Products
module Registry = Mf_heuristics.Registry

let () =
  (* Task graph (indices / types):
       T0 gear-train (0) -> T1 movement-adjust (1) -\
                                                     T4 join-case (3) -> T5 inspect (4)
       T2 case-mill (2)  -> T3 case-polish (2)     -/
     Types: 0 gear, 1 adjust, 2 milling (twice), 3 join, 4 inspect. *)
  let workflow =
    Workflow.in_forest
      ~types:[| 0; 1; 2; 2; 3; 4 |]
      ~successor:[| Some 1; Some 4; Some 3; Some 4; Some 5; None |]
  in
  Printf.printf "%s\n" (Format.asprintf "%a" Workflow.pp workflow);
  Printf.printf "sources: %s, sink: %s\n\n"
    (String.concat "," (List.map (Printf.sprintf "T%d") (Workflow.sources workflow)))
    (String.concat "," (List.map (Printf.sprintf "T%d") (Workflow.sinks workflow)));

  (* Five machines with heterogeneous speeds; milling machines are slower
     but steadier, the join robot is delicate (electrostatic pick-up
     failures, Section 3.3 of the paper). *)
  let m = 5 in
  let w_gear = [| 200.0; 240.0; 310.0; 260.0; 205.0 |] in
  let w_adjust = [| 150.0; 120.0; 180.0; 170.0; 160.0 |] in
  let w_mill = [| 400.0; 380.0; 300.0; 320.0; 390.0 |] in
  let w_join = [| 250.0; 260.0; 270.0; 210.0; 255.0 |] in
  let w_inspect = [| 90.0; 95.0; 105.0; 100.0; 85.0 |] in
  let f_row base = Array.init m (fun u -> base +. (0.002 *. float_of_int u)) in
  let inst =
    Instance.create ~workflow ~machines:m
      ~w:[| w_gear; w_adjust; w_mill; w_mill; w_join; w_inspect |]
      ~f:
        [|
          f_row 0.010; f_row 0.006; f_row 0.015; f_row 0.012; f_row 0.030; f_row 0.002;
        |]
  in

  (* Compare heuristics and pick the best mapping. *)
  let best =
    List.fold_left
      (fun acc h ->
        let mp = Registry.solve h inst in
        let p = Period.period inst mp in
        Printf.printf "%-4s -> period %8.2f ms\n" (Registry.name h) p;
        match acc with Some (_, bp) when bp <= p -> acc | _ -> Some (mp, p))
      None Registry.all
  in
  let mp, period = Option.get best in
  Printf.printf "\nbest mapping (period %.2f ms):\n" period;
  for u = 0 to m - 1 do
    match Mapping.tasks_on mp ~u with
    | [] -> ()
    | tasks ->
      Printf.printf "  M%d runs %s\n" u
        (String.concat ", " (List.map (Printf.sprintf "T%d") tasks))
  done;

  (* Joins: each branch must overproduce according to its own losses. *)
  let x = Products.x inst mp in
  Printf.printf "\nper-branch overproduction (products per finished watch):\n";
  Printf.printf "  movement branch: T0 %.3f, T1 %.3f\n" x.(0) x.(1);
  Printf.printf "  case branch:     T2 %.3f, T3 %.3f\n" x.(2) x.(3);
  Printf.printf "  assembly/final:  T4 %.3f, T5 %.3f\n" x.(4) x.(5);
  List.iter
    (fun (src, need) ->
      Printf.printf "  feed %d blanks at T%d per 1000 finished watches\n" need src)
    (Products.inputs_needed inst mp ~x_out:1000);

  (* Short simulation with a trace of the first events. *)
  Printf.printf "\nfirst simulation events:\n";
  let shown = ref 0 in
  let on_event e =
    if !shown < 12 then begin
      incr shown;
      Printf.printf "  %s\n" (Mf_sim.Event.to_string e)
    end
  in
  let r = Mf_sim.Desim.run ~horizon:3.0e6 ~seed:11 ~on_event inst mp in
  Printf.printf "\nsimulated: %.4f watches/s vs analytic %.4f watches/s\n"
    (1000.0 *. r.Mf_sim.Desim.throughput)
    (1000.0 *. Period.throughput inst mp);
  Printf.printf "losses per task over the run: %s\n"
    (String.concat " " (Array.to_list (Array.mapi (Printf.sprintf "T%d:%d") r.Mf_sim.Desim.lost)))
