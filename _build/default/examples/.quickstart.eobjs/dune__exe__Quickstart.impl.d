examples/quickstart.ml: Array List Mf_core Mf_exact Mf_heuristics Mf_reliability Mf_sim Printf String
