examples/failure_sweep.ml: List Mf_core Mf_heuristics Mf_prng Mf_workload Printf
