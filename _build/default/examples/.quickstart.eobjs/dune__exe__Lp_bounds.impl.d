examples/lp_bounds.ml: Array Format Mf_core Mf_exact Mf_heuristics Mf_lp Mf_prng Mf_workload Printf
