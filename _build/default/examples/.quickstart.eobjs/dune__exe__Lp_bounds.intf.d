examples/lp_bounds.mli:
