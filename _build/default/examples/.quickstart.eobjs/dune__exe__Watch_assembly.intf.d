examples/watch_assembly.mli:
