examples/watch_assembly.ml: Array Format List Mf_core Mf_heuristics Mf_sim Option Printf String
