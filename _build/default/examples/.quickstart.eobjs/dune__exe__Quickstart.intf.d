examples/quickstart.mli:
