examples/failure_sweep.mli:
