lib/workload/gen.mli: Mf_core Mf_prng
