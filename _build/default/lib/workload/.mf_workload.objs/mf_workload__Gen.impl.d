lib/workload/gen.ml: Array Mf_core Mf_prng
