(** Random instance generation with the paper's experimental parameters
    (Section 7).

    Processing times [w(i,u)] are uniform in [[100, 1000)] ms and failure
    rates [f(i,u)] uniform in [[0.005, 0.02)] unless overridden.  Tasks of
    equal type share processing times by construction (one draw per
    (type, machine) pair). *)

type params = {
  tasks : int;  (** [n] *)
  types : int;  (** [p <= n] *)
  machines : int;  (** [m] *)
  w_min : float;
  w_max : float;
  f_min : float;
  f_max : float;
  task_attached_failures : bool;
      (** when true, [f(i,u) = f_i] — the Section 7.2 regime where the
          optimal one-to-one mapping is computable *)
}

(** Paper defaults: [w ~ U[100,1000)], [f ~ U[0.005,0.02)],
    machine-dependent failures. *)
val default : tasks:int -> types:int -> machines:int -> params

(** [with_high_failures p] switches to the Figure 8 regime
    [f ~ U[0, 0.1)]. *)
val with_high_failures : params -> params

(** [chain rng p] draws a linear-chain instance.
    @raise Invalid_argument if [p.types > p.tasks] or sizes are
    non-positive. *)
val chain : Mf_prng.Rng.t -> params -> Mf_core.Instance.t

(** [in_tree rng p] draws an instance whose application is a random
    in-tree: every non-final task gets a successor of higher index, task
    [n-1] being the single sink. *)
val in_tree : Mf_prng.Rng.t -> params -> Mf_core.Instance.t

(** [types_array rng ~tasks ~types] draws the type of each task: a random
    assignment guaranteed to use each of the [types] types at least once. *)
val types_array : Mf_prng.Rng.t -> tasks:int -> types:int -> int array
