module Rng = Mf_prng.Rng
module Workflow = Mf_core.Workflow
module Instance = Mf_core.Instance

type params = {
  tasks : int;
  types : int;
  machines : int;
  w_min : float;
  w_max : float;
  f_min : float;
  f_max : float;
  task_attached_failures : bool;
}

let default ~tasks ~types ~machines =
  {
    tasks;
    types;
    machines;
    w_min = 100.0;
    w_max = 1000.0;
    f_min = 0.005;
    f_max = 0.02;
    task_attached_failures = false;
  }

let with_high_failures p = { p with f_min = 0.0; f_max = 0.1 }

let validate p =
  if p.tasks <= 0 then invalid_arg "Gen: need at least one task";
  if p.types <= 0 || p.types > p.tasks then
    invalid_arg "Gen: need 1 <= types <= tasks";
  if p.machines <= 0 then invalid_arg "Gen: need at least one machine";
  if p.w_min <= 0.0 || p.w_max <= p.w_min then invalid_arg "Gen: bad w range";
  if p.f_min < 0.0 || p.f_max >= 1.0 || p.f_max <= p.f_min then
    invalid_arg "Gen: bad f range"

let types_array rng ~tasks ~types =
  if types <= 0 || types > tasks then invalid_arg "Gen.types_array: need 1 <= types <= tasks";
  (* Guarantee coverage of every type, then shuffle. *)
  let arr = Array.init tasks (fun i -> if i < types then i else Rng.int rng types) in
  Rng.shuffle rng arr;
  arr

let draw_matrices rng p types =
  (* One processing-time draw per (type, machine). *)
  let w_by_type =
    Array.init p.types (fun _ ->
        Array.init p.machines (fun _ -> Rng.uniform rng ~lo:p.w_min ~hi:p.w_max))
  in
  let w = Array.init p.tasks (fun i -> Array.copy w_by_type.(types.(i))) in
  let f =
    if p.task_attached_failures then
      Array.init p.tasks (fun _ ->
          let fi = Rng.uniform rng ~lo:p.f_min ~hi:p.f_max in
          Array.make p.machines fi)
    else
      Array.init p.tasks (fun _ ->
          Array.init p.machines (fun _ -> Rng.uniform rng ~lo:p.f_min ~hi:p.f_max))
  in
  (w, f)

let chain rng p =
  validate p;
  let types = types_array rng ~tasks:p.tasks ~types:p.types in
  let w, f = draw_matrices rng p types in
  Instance.create ~workflow:(Workflow.chain ~types) ~machines:p.machines ~w ~f

let in_tree rng p =
  validate p;
  let types = types_array rng ~tasks:p.tasks ~types:p.types in
  let successor =
    Array.init p.tasks (fun i ->
        if i = p.tasks - 1 then None
        else Some (Rng.int_range rng ~lo:(i + 1) ~hi:(p.tasks - 1)))
  in
  let w, f = draw_matrices rng p types in
  Instance.create ~workflow:(Workflow.in_forest ~types ~successor) ~machines:p.machines ~w ~f
