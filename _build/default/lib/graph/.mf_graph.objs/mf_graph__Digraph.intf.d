lib/graph/digraph.mli:
