lib/graph/bottleneck.mli:
