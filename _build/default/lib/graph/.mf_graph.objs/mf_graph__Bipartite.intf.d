lib/graph/bipartite.mli:
