lib/graph/bipartite.ml: Array Mf_structures Queue
