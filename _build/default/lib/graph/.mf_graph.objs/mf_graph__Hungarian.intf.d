lib/graph/hungarian.mli:
