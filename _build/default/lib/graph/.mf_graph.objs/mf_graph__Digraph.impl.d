lib/graph/digraph.ml: Array Fun List Mf_structures Option Queue
