lib/graph/bottleneck.ml: Array Bipartite Float Mf_structures Option
