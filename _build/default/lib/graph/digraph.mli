(** Directed graphs over integer vertices [0 .. n-1].

    Backs the application-graph validation of {!Mf_core.Workflow}: cycle
    detection, topological orders and degree queries. *)

type t

(** [create n] is an edgeless graph on [n] vertices. *)
val create : int -> t

val vertex_count : t -> int
val edge_count : t -> int

(** [add_edge g u v] inserts the arc [u -> v] (duplicates are ignored).
    @raise Invalid_argument if an endpoint is out of range. *)
val add_edge : t -> int -> int -> unit

val mem_edge : t -> int -> int -> bool

(** [succ g u] is the list of successors of [u] in insertion order. *)
val succ : t -> int -> int list

(** [pred g u] is the list of predecessors of [u] in insertion order. *)
val pred : t -> int -> int list

val out_degree : t -> int -> int
val in_degree : t -> int -> int

(** [topological_order g] is [Some order] (sources first) when [g] is
    acyclic, [None] otherwise. *)
val topological_order : t -> int list option

val is_dag : t -> bool

(** [sources g] lists vertices with no predecessor. *)
val sources : t -> int list

(** [sinks g] lists vertices with no successor. *)
val sinks : t -> int list
