(** Maximum cardinality matching in bipartite graphs (Hopcroft–Karp).

    Left vertices are [0 .. n_left-1], right vertices [0 .. n_right-1].
    Runs in O(E sqrt(V)); used as the feasibility oracle of the bottleneck
    assignment solver. *)

type t

(** [create ~n_left ~n_right] is an empty bipartite graph. *)
val create : n_left:int -> n_right:int -> t

(** [add_edge g u v] connects left [u] to right [v].
    @raise Invalid_argument if an endpoint is out of range. *)
val add_edge : t -> int -> int -> unit

(** Result of a maximum matching computation. *)
type matching = {
  size : int;  (** number of matched pairs *)
  left_match : int array;  (** [left_match.(u)] is the right mate of [u], or [-1] *)
  right_match : int array;  (** [right_match.(v)] is the left mate of [v], or [-1] *)
}

(** [maximum_matching g] computes a maximum cardinality matching. *)
val maximum_matching : t -> matching

(** [is_perfect_on_left g m] is true when every left vertex is matched. *)
val is_perfect_on_left : t -> matching -> bool
