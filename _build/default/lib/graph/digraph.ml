module Ds = Mf_structures.Dyn_array

type t = {
  n : int;
  succ : int Ds.t array;
  pred : int Ds.t array;
  mutable edges : int;
}

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  {
    n;
    succ = Array.init n (fun _ -> Ds.create ());
    pred = Array.init n (fun _ -> Ds.create ());
    edges = 0;
  }

let vertex_count g = g.n
let edge_count g = g.edges

let check g u =
  if u < 0 || u >= g.n then invalid_arg "Digraph: vertex out of range"

let mem_edge g u v =
  check g u;
  check g v;
  Ds.fold_left (fun acc w -> acc || w = v) false g.succ.(u)

let add_edge g u v =
  check g u;
  check g v;
  if not (mem_edge g u v) then begin
    Ds.push g.succ.(u) v;
    Ds.push g.pred.(v) u;
    g.edges <- g.edges + 1
  end

let succ g u =
  check g u;
  Ds.to_list g.succ.(u)

let pred g u =
  check g u;
  Ds.to_list g.pred.(u)

let out_degree g u =
  check g u;
  Ds.length g.succ.(u)

let in_degree g u =
  check g u;
  Ds.length g.pred.(u)

(* Kahn's algorithm. *)
let topological_order g =
  let indeg = Array.init g.n (in_degree g) in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr visited;
    Ds.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      g.succ.(v)
  done;
  if !visited = g.n then Some (List.rev !order) else None

let is_dag g = Option.is_some (topological_order g)

let sources g =
  List.filter (fun v -> in_degree g v = 0) (List.init g.n Fun.id)

let sinks g =
  List.filter (fun v -> out_degree g v = 0) (List.init g.n Fun.id)
