(* Potentials formulation with successive shortest augmenting paths
   (the classic O(n^2 m) "e-maxx" variant, using 1-based sentinel row and
   column 0 internally). *)

let solve cost =
  let n = Array.length cost in
  if n = 0 then invalid_arg "Hungarian.solve: empty matrix";
  let m = Array.length cost.(0) in
  if Array.exists (fun r -> Array.length r <> m) cost then
    invalid_arg "Hungarian.solve: ragged matrix";
  if n > m then invalid_arg "Hungarian.solve: more rows than columns";
  let inf = infinity in
  (* u: row potentials (1..n), v: column potentials (1..m),
     p.(j): row assigned to column j, way.(j): previous column on the path. *)
  let u = Array.make (n + 1) 0.0 in
  let v = Array.make (m + 1) 0.0 in
  let p = Array.make (m + 1) 0 in
  let way = Array.make (m + 1) 0 in
  for i = 1 to n do
    p.(0) <- i;
    let j0 = ref 0 in
    let minv = Array.make (m + 1) inf in
    let used = Array.make (m + 1) false in
    let continue = ref true in
    while !continue do
      used.(!j0) <- true;
      let i0 = p.(!j0) in
      let delta = ref inf in
      let j1 = ref 0 in
      for j = 1 to m do
        if not used.(j) then begin
          let cur = cost.(i0 - 1).(j - 1) -. u.(i0) -. v.(j) in
          if cur < minv.(j) then begin
            minv.(j) <- cur;
            way.(j) <- !j0
          end;
          if minv.(j) < !delta then begin
            delta := minv.(j);
            j1 := j
          end
        end
      done;
      for j = 0 to m do
        if used.(j) then begin
          u.(p.(j)) <- u.(p.(j)) +. !delta;
          v.(j) <- v.(j) -. !delta
        end
        else minv.(j) <- minv.(j) -. !delta
      done;
      j0 := !j1;
      if p.(!j0) = 0 then continue := false
    done;
    (* Augment along the alternating path. *)
    let j = ref !j0 in
    while !j <> 0 do
      let jprev = way.(!j) in
      p.(!j) <- p.(jprev);
      j := jprev
    done
  done;
  let assignment = Array.make n (-1) in
  for j = 1 to m do
    if p.(j) > 0 then assignment.(p.(j) - 1) <- j - 1
  done;
  let total = ref 0.0 in
  Array.iteri (fun i j -> total := !total +. cost.(i).(j)) assignment;
  (assignment, !total)
