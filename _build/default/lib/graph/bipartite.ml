module Ds = Mf_structures.Dyn_array

type t = { n_left : int; n_right : int; adj : int Ds.t array }

let create ~n_left ~n_right =
  if n_left < 0 || n_right < 0 then invalid_arg "Bipartite.create: negative size";
  { n_left; n_right; adj = Array.init n_left (fun _ -> Ds.create ()) }

let add_edge g u v =
  if u < 0 || u >= g.n_left then invalid_arg "Bipartite.add_edge: left out of range";
  if v < 0 || v >= g.n_right then invalid_arg "Bipartite.add_edge: right out of range";
  Ds.push g.adj.(u) v

type matching = { size : int; left_match : int array; right_match : int array }

let infinity_dist = max_int

(* Hopcroft–Karp: repeated BFS layering + layered DFS augmentation. *)
let maximum_matching g =
  let match_l = Array.make g.n_left (-1) in
  let match_r = Array.make g.n_right (-1) in
  let dist = Array.make g.n_left infinity_dist in
  let queue = Queue.create () in
  let bfs () =
    Queue.clear queue;
    for u = 0 to g.n_left - 1 do
      if match_l.(u) = -1 then begin
        dist.(u) <- 0;
        Queue.add u queue
      end
      else dist.(u) <- infinity_dist
    done;
    let found = ref false in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Ds.iter
        (fun v ->
          let w = match_r.(v) in
          if w = -1 then found := true
          else if dist.(w) = infinity_dist then begin
            dist.(w) <- dist.(u) + 1;
            Queue.add w queue
          end)
        g.adj.(u)
    done;
    !found
  in
  let rec dfs u =
    let rec try_edges i =
      if i >= Ds.length g.adj.(u) then begin
        dist.(u) <- infinity_dist;
        false
      end
      else begin
        let v = Ds.get g.adj.(u) i in
        let w = match_r.(v) in
        if w = -1 || (dist.(w) = dist.(u) + 1 && dfs w) then begin
          match_l.(u) <- v;
          match_r.(v) <- u;
          true
        end
        else try_edges (i + 1)
      end
    in
    try_edges 0
  in
  let size = ref 0 in
  while bfs () do
    for u = 0 to g.n_left - 1 do
      if match_l.(u) = -1 && dfs u then incr size
    done
  done;
  { size = !size; left_match = match_l; right_match = match_r }

let is_perfect_on_left g m = m.size = g.n_left
