(** Hungarian algorithm for the min-cost rectangular assignment problem.

    Given an [n x m] cost matrix with [n <= m], finds an assignment of every
    row to a distinct column minimizing the total cost, in O(n^2 m).

    This is the polynomial algorithm behind Theorem 1 of the paper: the
    optimal one-to-one mapping of a linear chain on homogeneous machines is
    the min-weight bipartite matching with costs [-log(1 - f(i,u))]. *)

(** [solve cost] returns [(assignment, total)] where [assignment.(i)] is the
    column assigned to row [i] and [total] the optimal cost.
    @raise Invalid_argument if the matrix is empty, ragged, or has more rows
    than columns. *)
val solve : float array array -> int array * float
