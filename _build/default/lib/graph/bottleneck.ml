let solve cost =
  let n = Array.length cost in
  if n = 0 then invalid_arg "Bottleneck.solve: empty matrix";
  let m = Array.length cost.(0) in
  if Array.exists (fun r -> Array.length r <> m) cost then
    invalid_arg "Bottleneck.solve: ragged matrix";
  if n > m then invalid_arg "Bottleneck.solve: more rows than columns";
  (* Distinct sorted cost values as binary search domain. *)
  let values =
    let all = Array.concat (Array.to_list cost) in
    Array.sort Float.compare all;
    let dedup = Mf_structures.Dyn_array.create () in
    Array.iter
      (fun v ->
        if
          Mf_structures.Dyn_array.is_empty dedup
          || Mf_structures.Dyn_array.get dedup (Mf_structures.Dyn_array.length dedup - 1) <> v
        then Mf_structures.Dyn_array.push dedup v)
      all;
    Mf_structures.Dyn_array.to_array dedup
  in
  let feasible threshold =
    let g = Bipartite.create ~n_left:n ~n_right:m in
    for i = 0 to n - 1 do
      for j = 0 to m - 1 do
        if cost.(i).(j) <= threshold then Bipartite.add_edge g i j
      done
    done;
    let matching = Bipartite.maximum_matching g in
    if Bipartite.is_perfect_on_left g matching then Some matching.Bipartite.left_match
    else None
  in
  (* Binary search for the smallest feasible threshold index. *)
  let lo = ref 0 and hi = ref (Array.length values - 1) in
  if Option.is_none (feasible values.(!hi)) then
    invalid_arg "Bottleneck.solve: no perfect matching exists";
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    match feasible values.(mid) with
    | Some _ -> hi := mid
    | None -> lo := mid + 1
  done;
  match feasible values.(!lo) with
  | Some assignment -> (assignment, values.(!lo))
  | None -> assert false
