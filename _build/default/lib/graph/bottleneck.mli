(** Bottleneck (min-max) rectangular assignment.

    Given an [n x m] cost matrix with [n <= m], finds an assignment of every
    row to a distinct column minimizing the {e maximum} selected cost, by
    binary search over the distinct cost values with a Hopcroft–Karp
    feasibility matching.

    This solves the optimal one-to-one mapping of the paper's Section 7.2
    experiment: with task-attached failures ([f(i,u) = f_i]) the products
    count [x_i] is mapping-independent, each machine executes one task, and
    the system period is [max_i x_i * w(i, a(i))] — a bottleneck
    assignment on costs [x_i * w(i,u)]. *)

(** [solve cost] returns [(assignment, value)] where [assignment.(i)] is the
    column of row [i] and [value] the optimal bottleneck.
    @raise Invalid_argument if the matrix is empty, ragged, or has more rows
    than columns. *)
val solve : float array array -> int array * float
