(** Descriptive statistics over float samples.

    Every experiment point in the paper is an average over 30 (or 100)
    simulations; this module provides the aggregations used by the
    experiment runner and reported in EXPERIMENTS.md. *)

(** [mean xs] is the arithmetic mean.
    @raise Invalid_argument on an empty array. *)
val mean : float array -> float

(** [variance xs] is the unbiased sample variance (n-1 denominator);
    [0.0] for singleton samples.
    @raise Invalid_argument on an empty array. *)
val variance : float array -> float

(** [stddev xs] is the unbiased sample standard deviation. *)
val stddev : float array -> float

(** [population_stddev xs] uses the n denominator — this is the
    heterogeneity measure of heuristic H3. *)
val population_stddev : float array -> float

(** [median xs] is the 0.5 quantile; does not modify [xs]. *)
val median : float array -> float

(** [quantile q xs] is the linearly-interpolated [q]-quantile, [q] in [0,1].
    @raise Invalid_argument if [q] is out of range or [xs] is empty. *)
val quantile : float -> float array -> float

val min : float array -> float
val max : float array -> float

(** [ci95 xs] is the half-width of the 95% normal-approximation confidence
    interval on the mean. *)
val ci95 : float array -> float

(** Summary record bundling the usual aggregates. *)
type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  ci95 : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit
