(** Exact rational numbers over {!Bigint}.

    Values are kept normalised: the denominator is strictly positive and the
    numerator and denominator are coprime, so structural equality coincides
    with numerical equality. *)

type t = private { num : Bigint.t; den : Bigint.t }

val zero : t
val one : t
val minus_one : t

(** [make num den] is the normalised rational [num/den].
    @raise Division_by_zero if [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

(** [of_int n] is the integer [n] as a rational. *)
val of_int : int -> t

(** [of_ints num den] is [num/den] from native integers. *)
val of_ints : int -> int -> t

(** [of_bigint n] embeds an integer. *)
val of_bigint : Bigint.t -> t

(** [of_float f] is the exact binary rational equal to the float [f].
    @raise Invalid_argument on NaN or infinities. *)
val of_float : float -> t

val to_float : t -> float

(** [num x] and [den x] expose the normalised numerator and denominator. *)
val num : t -> Bigint.t

val den : t -> Bigint.t

val sign : t -> int
val is_zero : t -> bool
val neg : t -> t
val abs : t -> t
val inv : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero when dividing by zero. *)
val div : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t

(** [to_string x] prints ["num/den"], or just ["num"] for integers. *)
val to_string : t -> string

val of_string : string -> t
val pp : Format.formatter -> t -> unit
