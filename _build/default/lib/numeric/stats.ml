let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (Printf.sprintf "Stats.%s: empty sample" name)

let mean xs =
  check_nonempty "mean" xs;
  Kahan.sum xs /. float_of_int (Array.length xs)

let sum_sq_dev xs =
  let m = mean xs in
  Kahan.sum_by (fun x -> (x -. m) *. (x -. m)) xs

let variance xs =
  check_nonempty "variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.0 else sum_sq_dev xs /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let population_stddev xs =
  check_nonempty "population_stddev" xs;
  sqrt (sum_sq_dev xs /. float_of_int (Array.length xs))

let quantile q xs =
  check_nonempty "quantile" xs;
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let w = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)
  end

let median xs = quantile 0.5 xs

let min xs =
  check_nonempty "min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  check_nonempty "max" xs;
  Array.fold_left Float.max xs.(0) xs

let ci95 xs =
  check_nonempty "ci95" xs;
  let n = Array.length xs in
  if n = 1 then 0.0 else 1.96 *. stddev xs /. sqrt (float_of_int n)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  ci95 : float;
}

let summarize xs =
  check_nonempty "summarize" xs;
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = min xs;
    max = max xs;
    median = median xs;
    ci95 = ci95 xs;
  }

let pp_summary fmt s =
  Format.fprintf fmt "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f ci95=%.3f"
    s.n s.mean s.stddev s.min s.median s.max s.ci95
