(** Arbitrary-precision signed integers.

    The implementation is a sign-magnitude representation over little-endian
    arrays of 15-bit digits.  The base is chosen so that a digit product fits
    comfortably in an OCaml native [int] (30 bits) and a full schoolbook
    multiplication row can be accumulated without overflow.

    All values are normalised: no leading zero digit, and the magnitude of
    zero is the empty array with sign [0].  Every function returns normalised
    values, so structural equality coincides with numerical equality. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

(** [of_int n] converts a native integer (including [min_int]). *)
val of_int : int -> t

(** [to_int x] returns [Some n] when [x] fits in a native [int]. *)
val to_int : t -> int option

(** [to_int_exn x] is [to_int] or raises [Failure] on overflow. *)
val to_int_exn : t -> int

(** [to_float x] is the nearest floating-point value (may lose precision,
    and may be infinite for huge values). *)
val to_float : t -> float

(** [of_string s] parses an optionally-signed decimal literal.
    Underscores are accepted as digit separators.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

(** [to_string x] is the decimal representation of [x]. *)
val to_string : t -> string

(** {1 Inspection} *)

(** [sign x] is [-1], [0] or [1]. *)
val sign : t -> int

val is_zero : t -> bool
val is_one : t -> bool

(** [is_even x] is true iff [x] is divisible by two. *)
val is_even : t -> bool

(** [bit_length x] is the position of the highest set bit of [abs x]
    ([0] for zero). *)
val bit_length : t -> int

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t

(** [mul a b]: schoolbook below ~480 decimal digits, Karatsuba above. *)
val mul : t -> t -> t

(** [mul_schoolbook a b] always uses the quadratic algorithm — the
    reference implementation the Karatsuba path is property-tested
    against. *)
val mul_schoolbook : t -> t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], [q] truncated toward zero
    and [r] carrying the sign of [a] (C-style truncated division).
    @raise Division_by_zero if [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [gcd a b] is the non-negative greatest common divisor. *)
val gcd : t -> t -> t

(** [pow x k] is [x] raised to the non-negative power [k].
    @raise Invalid_argument if [k < 0]. *)
val pow : t -> int -> t

(** [shift_left x k] multiplies by [2^k]. *)
val shift_left : t -> int -> t

(** [shift_right x k] is arithmetic shift toward zero of the magnitude:
    [shift_right x k = div x (2^k)] for non-negative [x]. *)
val shift_right : t -> int -> t

(** {1 Operators} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t

(** {1 Misc} *)

val hash : t -> int
val pp : Format.formatter -> t -> unit
