lib/numeric/ordered_field.ml: Float Rat
