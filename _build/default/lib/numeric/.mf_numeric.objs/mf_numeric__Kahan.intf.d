lib/numeric/kahan.mli:
