(** Probabilistic output guarantees (paper Section 2).

    "In any case, the issue is to guarantee the output of a given number of
    products.  Once an allocation of tasks to machines has been given, we
    can compute the number of products needed as input of the system and
    guarantee the output for the desired number of products."

    {!Mf_core.Products.inputs_needed} answers in expectation; this module
    answers in probability for {e chain} applications: each raw product
    fed at the source independently survives the whole line with
    probability [q = prod_i (1 - f(i, a(i)))], so the number of finished
    products out of [N] inputs is Binomial(N, q), and the guarantee is a
    binomial tail bound. *)

(** [survival_probability inst mp] is the probability [q] that one raw
    product survives the whole chain under the mapping.
    @raise Invalid_argument if the application is not a chain. *)
val survival_probability : Mf_core.Instance.t -> Mf_core.Mapping.t -> float

(** [inputs_for inst mp ~x_out ~confidence] is the smallest number of raw
    products to feed so that at least [x_out] finished products are output
    with probability at least [confidence].
    @raise Invalid_argument if the application is not a chain, [x_out < 0]
    or [confidence] is outside (0, 1). *)
val inputs_for :
  Mf_core.Instance.t -> Mf_core.Mapping.t -> x_out:int -> confidence:float -> int

(** [success_probability inst mp ~inputs ~x_out] is the probability that
    feeding [inputs] raw products yields at least [x_out] finished ones. *)
val success_probability :
  Mf_core.Instance.t -> Mf_core.Mapping.t -> inputs:int -> x_out:int -> float

(** [monte_carlo inst mp ~inputs ~x_out ~trials ~seed] estimates the same
    probability by direct simulation of the Bernoulli losses (tests and
    sanity checks). *)
val monte_carlo :
  Mf_core.Instance.t ->
  Mf_core.Mapping.t ->
  inputs:int ->
  x_out:int ->
  trials:int ->
  seed:int ->
  float
