lib/reliability/binomial.mli:
