lib/reliability/guarantee.ml: Binomial Mf_core Mf_prng
