lib/reliability/binomial.ml: Array Float Stdlib
