lib/reliability/guarantee.mli: Mf_core
