module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Rng = Mf_prng.Rng

let require_chain inst =
  if not (Workflow.is_chain (Instance.workflow inst)) then
    invalid_arg "Guarantee: probabilistic guarantees are derived for chain applications"

let survival_probability inst mp =
  require_chain inst;
  let q = ref 1.0 in
  for i = 0 to Instance.task_count inst - 1 do
    q := !q *. (1.0 -. Instance.f inst i (Mapping.machine mp i))
  done;
  !q

let inputs_for inst mp ~x_out ~confidence =
  if x_out < 0 then invalid_arg "Guarantee.inputs_for: negative x_out";
  let q = survival_probability inst mp in
  Binomial.min_trials ~p:q ~successes:x_out ~confidence

let success_probability inst mp ~inputs ~x_out =
  let q = survival_probability inst mp in
  Binomial.sf ~n:inputs ~p:q x_out

let monte_carlo inst mp ~inputs ~x_out ~trials ~seed =
  require_chain inst;
  if trials <= 0 then invalid_arg "Guarantee.monte_carlo: need at least one trial";
  let n = Instance.task_count inst in
  let rng = Rng.create seed in
  let hits = ref 0 in
  for _ = 1 to trials do
    let finished = ref 0 in
    for _ = 1 to inputs do
      let alive = ref true in
      let i = ref 0 in
      while !alive && !i < n do
        if Rng.bernoulli rng (Instance.f inst !i (Mapping.machine mp !i)) then alive := false;
        incr i
      done;
      if !alive then incr finished
    done;
    if !finished >= x_out then incr hits
  done;
  float_of_int !hits /. float_of_int trials
