(* log Gamma via the Lanczos approximation (g = 7, n = 9), accurate to
   ~1e-13 over the positive reals - plenty for tail sums. *)
let lanczos =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x < 0.5 then
    (* Reflection formula keeps small arguments accurate. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

let log_choose n k =
  log_gamma (float_of_int (n + 1))
  -. log_gamma (float_of_int (k + 1))
  -. log_gamma (float_of_int (n - k + 1))

let check_np name n p =
  if n < 0 then invalid_arg (name ^ ": negative n");
  if not (p >= 0.0 && p <= 1.0) then invalid_arg (name ^ ": p outside [0,1]")

let log_pmf ~n ~p k =
  check_np "Binomial.log_pmf" n p;
  if k < 0 || k > n then invalid_arg "Binomial.log_pmf: k outside [0,n]";
  if p = 0.0 then (if k = 0 then 0.0 else neg_infinity)
  else if p = 1.0 then (if k = n then 0.0 else neg_infinity)
  else
    log_choose n k
    +. (float_of_int k *. log p)
    +. (float_of_int (n - k) *. log1p (-.p))

let pmf ~n ~p k = exp (log_pmf ~n ~p k)

(* Tail sums walk outward from the boundary term, accumulating the ratio
   pmf(k+1)/pmf(k) = (n-k)/(k+1) * p/(1-p) to avoid n log-gamma calls. *)
let sf ~n ~p k =
  check_np "Binomial.sf" n p;
  if k <= 0 then 1.0
  else if k > n then 0.0
  else if p = 0.0 then 0.0
  else if p = 1.0 then 1.0
  else begin
    let odds = p /. (1.0 -. p) in
    (* Sum the smaller side and complement if cheaper. *)
    let mean = float_of_int n *. p in
    if float_of_int k > mean then begin
      (* Sum P(X >= k) upward. *)
      let term = ref (pmf ~n ~p k) in
      let total = ref 0.0 in
      let j = ref k in
      while !j <= n && (!term > 0.0 || !j = k) do
        total := !total +. !term;
        term := !term *. (float_of_int (n - !j) /. float_of_int (!j + 1)) *. odds;
        incr j
      done;
      Float.min 1.0 !total
    end
    else begin
      (* Sum P(X <= k-1) downward and complement. *)
      let term = ref (pmf ~n ~p (k - 1)) in
      let total = ref 0.0 in
      let j = ref (k - 1) in
      while !j >= 0 && (!term > 0.0 || !j = k - 1) do
        total := !total +. !term;
        if !j > 0 then
          term := !term *. (float_of_int !j /. float_of_int (n - !j + 1)) /. odds;
        decr j
      done;
      Float.max 0.0 (1.0 -. !total)
    end
  end

let cdf ~n ~p k =
  check_np "Binomial.cdf" n p;
  if k < 0 then 0.0 else if k >= n then 1.0 else 1.0 -. sf ~n ~p (k + 1)

let mean ~n ~p =
  check_np "Binomial.mean" n p;
  float_of_int n *. p

let variance ~n ~p =
  check_np "Binomial.variance" n p;
  float_of_int n *. p *. (1.0 -. p)

let min_trials ~p ~successes ~confidence =
  if p <= 0.0 || p > 1.0 then invalid_arg "Binomial.min_trials: need p in (0,1]";
  if successes < 0 then invalid_arg "Binomial.min_trials: negative successes";
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Binomial.min_trials: confidence outside (0,1)";
  if successes = 0 then 0
  else begin
    (* Normal-approximation initial bracket, then binary search on the
       monotone n -> P(X >= successes). *)
    let x = float_of_int successes in
    let guess =
      int_of_float ((x /. p) +. (4.0 *. sqrt (x /. p) /. p) +. 16.0)
    in
    let hi = ref (Stdlib.max successes guess) in
    while sf ~n:!hi ~p successes < confidence do
      hi := !hi * 2
    done;
    let lo = ref successes in
    while !hi - !lo > 0 do
      let mid = !lo + ((!hi - !lo) / 2) in
      if sf ~n:mid ~p successes >= confidence then hi := mid else lo := mid + 1
    done;
    !hi
  end
