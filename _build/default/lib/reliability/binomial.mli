(** Binomial distribution computations in log space.

    Supports the output-guarantee analysis of {!Guarantee}: tail
    probabilities of Binomial(n, p) for [n] up to millions without
    underflow, plus an exact-enough inverse for the smallest [n] achieving
    a tail bound. *)

(** [log_pmf ~n ~p k] is [log P(X = k)] for X ~ Binomial(n, p).
    @raise Invalid_argument for [k] outside [0, n] or [p] outside [0, 1]. *)
val log_pmf : n:int -> p:float -> int -> float

(** [pmf ~n ~p k] is [P(X = k)]. *)
val pmf : n:int -> p:float -> int -> float

(** [sf ~n ~p k] is the survival function [P(X >= k)] (equals 1 for
    [k <= 0]). *)
val sf : n:int -> p:float -> int -> float

(** [cdf ~n ~p k] is [P(X <= k)]. *)
val cdf : n:int -> p:float -> int -> float

(** [mean ~n ~p] and [variance ~n ~p]. *)
val mean : n:int -> p:float -> float

val variance : n:int -> p:float -> float

(** [min_trials ~p ~successes ~confidence] is the smallest [n] such that
    [P(Binomial(n, p) >= successes) >= confidence].
    @raise Invalid_argument if [p = 0], [successes < 0] or [confidence]
    is outside (0, 1). *)
val min_trials : p:float -> successes:int -> confidence:float -> int
