(** ASCII rendering of experiment figures: one aligned table per figure,
    one row per x value, one column per algorithm (mean period in ms, as
    the paper plots), plus success counts for columns that can fail. *)

(** [pp_figure fmt fig] prints the whole table with title and notes. *)
val pp_figure : Format.formatter -> Runner.figure -> unit

(** [to_string fig] is [pp_figure] into a string. *)
val to_string : Runner.figure -> string

(** [pp_csv fmt fig] prints the same data as CSV (x, then one column per
    algorithm) for external plotting. *)
val pp_csv : Format.formatter -> Runner.figure -> unit
