module Registry = Mf_heuristics.Registry
module Period = Mf_core.Period

type algo = { label : string; solve : Mf_core.Instance.t -> seed:int -> float option }

type cell = { label : string; values : float option array; successes : int; trials : int }

type point = { x : int; cells : cell list }

type figure = {
  id : string;
  title : string;
  x_label : string;
  points : point list;
  notes : string list;
}

let heuristic h =
  {
    label = Registry.name h;
    solve = (fun inst ~seed -> Some (Period.period inst (Registry.solve ~seed h inst)));
  }

let oto_bottleneck =
  {
    label = "OtO";
    solve =
      (fun inst ~seed:_ ->
        let _, period = Mf_exact.Oto.bottleneck inst in
        Some period);
  }

let exact_dfs ~node_budget =
  {
    label = "MIP";
    solve =
      (fun inst ~seed:_ ->
        let r = Mf_exact.Dfs.specialized ~node_budget inst in
        if r.Mf_exact.Dfs.optimal then Some r.Mf_exact.Dfs.period else None);
  }

let derive_seed ~id ~x ~rep =
  let sm = Mf_prng.Splitmix64.create (Int64.of_int (Hashtbl.hash (id, x, rep))) in
  Int64.to_int (Int64.logand (Mf_prng.Splitmix64.next sm) 0x3FFFFFFFFFFFFFFFL)

let run ~id ~title ~x_label ?(notes = []) ~xs ~replicates ~gen ~algos () =
  let points =
    List.map
      (fun x ->
        let per_algo = List.map (fun (a : algo) -> (a, Array.make replicates None)) algos in
        for rep = 0 to replicates - 1 do
          let seed = derive_seed ~id ~x ~rep in
          let inst = gen ~x ~seed in
          List.iter (fun (a, slots) -> slots.(rep) <- a.solve inst ~seed) per_algo
        done;
        let cells =
          List.map
            (fun ((a : algo), slots) ->
              {
                label = a.label;
                values = slots;
                successes =
                  Array.fold_left (fun acc v -> if Option.is_some v then acc + 1 else acc) 0 slots;
                trials = replicates;
              })
            per_algo
        in
        { x; cells })
      xs
  in
  { id; title; x_label; points; notes }

let successful cell =
  Array.of_list (List.filter_map Fun.id (Array.to_list cell.values))

let mean cell =
  let ok = successful cell in
  if Array.length ok = 0 then nan else Mf_numeric.Stats.mean ok

let find_cell point label = List.find_opt (fun c -> c.label = label) point.cells
