let labels (fig : Runner.figure) =
  match fig.Runner.points with
  | [] -> []
  | pt :: _ -> List.map (fun (c : Runner.cell) -> c.Runner.label) pt.Runner.cells

let dat_contents (fig : Runner.figure) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# %s - %s\n" fig.Runner.id fig.Runner.title);
  Buffer.add_string buf
    (Printf.sprintf "# %s %s\n" fig.Runner.x_label (String.concat " " (labels fig)));
  List.iter
    (fun (pt : Runner.point) ->
      Buffer.add_string buf (string_of_int pt.Runner.x);
      List.iter
        (fun (c : Runner.cell) ->
          if c.Runner.successes = 0 then Buffer.add_string buf " ?"
          else Buffer.add_string buf (Printf.sprintf " %.6f" (Runner.mean c)))
        pt.Runner.cells;
      Buffer.add_char buf '\n')
    fig.Runner.points;
  Buffer.contents buf

let gp_contents (fig : Runner.figure) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "set title \"%s\"\n" fig.Runner.title);
  Buffer.add_string buf (Printf.sprintf "set xlabel \"%s\"\n" fig.Runner.x_label);
  Buffer.add_string buf "set ylabel \"period in ms\"\n";
  Buffer.add_string buf "set key top left\n";
  Buffer.add_string buf "set datafile missing \"?\"\n";
  Buffer.add_string buf (Printf.sprintf "set terminal png size 900,600\n");
  Buffer.add_string buf (Printf.sprintf "set output \"%s.png\"\n" fig.Runner.id);
  let plots =
    List.mapi
      (fun idx label ->
        Printf.sprintf "\"%s.dat\" using 1:%d with linespoints title \"%s\"" fig.Runner.id
          (idx + 2) label)
      (labels fig)
  in
  Buffer.add_string buf ("plot " ^ String.concat ", \\\n     " plots ^ "\n");
  Buffer.contents buf

let write_files ~dir (fig : Runner.figure) =
  let dat_path = Filename.concat dir (fig.Runner.id ^ ".dat") in
  let gp_path = Filename.concat dir (fig.Runner.id ^ ".gp") in
  let write path contents =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
  in
  write dat_path (dat_contents fig);
  write gp_path (gp_contents fig);
  (dat_path, gp_path)
