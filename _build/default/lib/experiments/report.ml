let labels fig =
  match fig.Runner.points with
  | [] -> []
  | pt :: _ -> List.map (fun (c : Runner.cell) -> c.Runner.label) pt.Runner.cells

let has_failures fig =
  List.exists
    (fun (pt : Runner.point) ->
      List.exists (fun (c : Runner.cell) -> c.Runner.successes < c.Runner.trials) pt.Runner.cells)
    fig.Runner.points

let cell_text c =
  let mean = Runner.mean c in
  if c.Runner.successes = 0 then "-"
  else if c.Runner.successes < c.Runner.trials then
    Printf.sprintf "%.1f (%d/%d)" mean c.Runner.successes c.Runner.trials
  else Printf.sprintf "%.1f" mean

let pp_figure fmt fig =
  Format.fprintf fmt "=== %s: %s ===@," (String.uppercase_ascii fig.Runner.id) fig.Runner.title;
  List.iter (fun n -> Format.fprintf fmt "note: %s@," n) fig.Runner.notes;
  if has_failures fig then
    Format.fprintf fmt "note: cells with failures show mean (successes/trials)@,";
  let labels = labels fig in
  let col_width =
    List.fold_left (fun acc l -> Stdlib.max acc (String.length l)) 14 labels + 2
  in
  let x_width = Stdlib.max (String.length fig.Runner.x_label) 6 + 2 in
  let pad w s = Printf.sprintf "%*s" w s in
  Format.fprintf fmt "%s" (pad x_width fig.Runner.x_label);
  List.iter (fun l -> Format.fprintf fmt "%s" (pad col_width l)) labels;
  Format.fprintf fmt "@,";
  List.iter
    (fun (pt : Runner.point) ->
      Format.fprintf fmt "%s" (pad x_width (string_of_int pt.Runner.x));
      List.iter
        (fun (c : Runner.cell) -> Format.fprintf fmt "%s" (pad col_width (cell_text c)))
        pt.Runner.cells;
      Format.fprintf fmt "@,")
    fig.Runner.points

let to_string fig = Format.asprintf "@[<v>%a@]" pp_figure fig

let pp_csv fmt fig =
  Format.fprintf fmt "x";
  List.iter (fun l -> Format.fprintf fmt ",%s" l) (labels fig);
  Format.fprintf fmt "@,";
  List.iter
    (fun (pt : Runner.point) ->
      Format.fprintf fmt "%d" pt.Runner.x;
      List.iter
        (fun (c : Runner.cell) ->
          if c.Runner.successes = 0 then Format.fprintf fmt ","
          else Format.fprintf fmt ",%.6f" (Runner.mean c))
        pt.Runner.cells;
      Format.fprintf fmt "@,")
    fig.Runner.points
