let factors_vs (fig : Runner.figure) ~reference =
  let table = Hashtbl.create 8 in
  List.iter
    (fun (pt : Runner.point) ->
      match Runner.find_cell pt reference with
      | None -> ()
      | Some ref_cell ->
        List.iter
          (fun (c : Runner.cell) ->
            if c.Runner.label <> reference then
              Array.iteri
                (fun rep v ->
                  match (v, ref_cell.Runner.values.(rep)) with
                  | Some period, Some ref_period when ref_period > 0.0 ->
                    let sum, count =
                      try Hashtbl.find table c.Runner.label with Not_found -> (0.0, 0)
                    in
                    Hashtbl.replace table c.Runner.label
                      (sum +. (period /. ref_period), count + 1)
                  | _ -> ())
                c.Runner.values)
          pt.Runner.cells)
    fig.Runner.points;
  Hashtbl.fold (fun label (sum, count) acc -> (label, sum /. float_of_int count, count) :: acc)
    table []
  |> List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b)

let pp_factors fmt fig ~reference =
  Format.fprintf fmt "factors vs %s over %s:@," reference fig.Runner.id;
  List.iter
    (fun (label, factor, count) ->
      Format.fprintf fmt "  %-6s %.2fx  (%d paired instances)@," label factor count)
    (factors_vs fig ~reference)
