lib/experiments/figures.ml: Array List Mf_heuristics Mf_prng Mf_workload Option Runner
