lib/experiments/summary.ml: Array Float Format Hashtbl List Runner
