lib/experiments/runner.ml: Array Fun Hashtbl Int64 List Mf_core Mf_exact Mf_heuristics Mf_numeric Mf_prng Option
