lib/experiments/plot.mli: Runner
