lib/experiments/runner.mli: Mf_core Mf_heuristics
