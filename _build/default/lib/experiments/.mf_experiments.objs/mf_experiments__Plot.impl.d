lib/experiments/plot.ml: Buffer Filename Fun List Printf Runner String
