lib/experiments/summary.mli: Format Runner
