lib/experiments/report.ml: Format List Printf Runner Stdlib String
