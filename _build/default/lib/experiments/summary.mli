(** Cross-figure summary statistics: the normalisation factors the paper
    quotes ("H2, H3 and H4w are respectively at a factor of 1.73, 1.58 and
    1.33 from the optimal"). *)

(** [factors_vs fig ~reference] computes, for every other algorithm in the
    figure, the mean per-instance ratio algorithm/reference over all points
    and replicates where both succeeded.  Returns (label, factor, paired
    count), sorted by factor. *)
val factors_vs : Runner.figure -> reference:string -> (string * float * int) list

(** [pp_factors fmt fig ~reference] prints the factors table. *)
val pp_factors : Format.formatter -> Runner.figure -> reference:string -> unit
