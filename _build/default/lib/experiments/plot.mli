(** Gnuplot export: writes a [.dat] data file and a ready-to-run [.gp]
    script per figure, so the paper's plots can be regenerated graphically
    with [gnuplot <fig>.gp]. *)

(** [write_files ~dir fig] writes [dir/<id>.dat] and [dir/<id>.gp] and
    returns both paths.  Missing cells (solver failures) become gnuplot
    missing values ("?"). *)
val write_files : dir:string -> Runner.figure -> string * string

(** [dat_contents fig] and [gp_contents fig] expose the generated file
    bodies (used by the tests). *)
val dat_contents : Runner.figure -> string

val gp_contents : Runner.figure -> string
