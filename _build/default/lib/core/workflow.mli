(** Application graphs (paper Section 3.1).

    An application is a set of [n] typed tasks arranged in an {e in-forest}:
    every task has at most one successor, so the graph is a collection of
    in-trees whose roots are the final tasks.  Joins (several predecessors)
    model the assembly of sub-products; forks are forbidden because a
    physical product cannot be duplicated.

    Tasks are numbered [0 .. n-1] and types [0 .. p-1].  Every type in
    [0 .. p-1] must be used by at least one task. *)

type t

(** {1 Constructors} *)

(** [chain ~types] is the linear chain [T0 -> T1 -> ... -> T(n-1)] where
    task [i] has type [types.(i)].
    @raise Invalid_argument if [types] is empty or types are not the
    contiguous range [0 .. p-1]. *)
val chain : types:int array -> t

(** [in_forest ~types ~successor] builds a general application where task
    [i] flows into [successor.(i)] ([None] for final tasks).
    @raise Invalid_argument if the successor relation has a cycle, a
    self-loop, or the types are not contiguous. *)
val in_forest : types:int array -> successor:int option array -> t

(** {1 Accessors} *)

(** [task_count wf] is [n]. *)
val task_count : t -> int

(** [type_count wf] is [p], the number of distinct task types. *)
val type_count : t -> int

(** [ttype wf i] is the type of task [i]. *)
val ttype : t -> int -> int

(** [successor wf i] is the unique successor of task [i], if any. *)
val successor : t -> int -> int option

(** [predecessors wf i] lists the tasks joining into [i], in increasing
    order. *)
val predecessors : t -> int -> int list

(** [sinks wf] lists the final tasks (no successor). *)
val sinks : t -> int list

(** [sources wf] lists the entry tasks (no predecessor). *)
val sources : t -> int list

(** [is_chain wf] is true when the application is one linear chain
    [T0 -> T1 -> ...]. *)
val is_chain : t -> bool

(** [backward_order wf] is a permutation of tasks in which every task
    appears {e after} its successor — the traversal order of the paper's
    heuristics ("starting with the last task ... going backward").  For a
    chain this is [n-1, n-2, ..., 0]. *)
val backward_order : t -> int array

(** [to_digraph wf] is the underlying dependency digraph (edges from a task
    to its successor). *)
val to_digraph : t -> Mf_graph.Digraph.t

(** [tasks_of_type wf j] lists the tasks of type [j] in increasing order. *)
val tasks_of_type : t -> int -> int list

val pp : Format.formatter -> t -> unit
