type t = {
  workflow : Workflow.t;
  machines : int;
  w : float array array;
  f : float array array;
}

let create ~workflow ~machines ~w ~f =
  let n = Workflow.task_count workflow in
  if machines <= 0 then invalid_arg "Instance: need at least one machine";
  let check_matrix name mat =
    if Array.length mat <> n then
      invalid_arg (Printf.sprintf "Instance: %s must have one row per task" name);
    Array.iter
      (fun row ->
        if Array.length row <> machines then
          invalid_arg (Printf.sprintf "Instance: %s must have one column per machine" name))
      mat
  in
  check_matrix "w" w;
  check_matrix "f" f;
  Array.iter
    (Array.iter (fun v ->
         if not (Float.is_finite v) || v <= 0.0 then
           invalid_arg "Instance: processing times must be positive and finite"))
    w;
  Array.iter
    (Array.iter (fun v ->
         if not (Float.is_finite v) || v < 0.0 || v >= 1.0 then
           invalid_arg "Instance: failure probabilities must lie in [0, 1)"))
    f;
  (* Type consistency of w: tasks of equal type share a row. *)
  let rep = Array.make (Workflow.type_count workflow) (-1) in
  for i = 0 to n - 1 do
    let ty = Workflow.ttype workflow i in
    if rep.(ty) < 0 then rep.(ty) <- i
    else if w.(i) <> w.(rep.(ty)) then
      invalid_arg "Instance: tasks of the same type must share processing times"
  done;
  {
    workflow;
    machines;
    w = Array.map Array.copy w;
    f = Array.map Array.copy f;
  }

let workflow inst = inst.workflow
let machines inst = inst.machines
let task_count inst = Workflow.task_count inst.workflow
let type_count inst = Workflow.type_count inst.workflow

let check_task inst i =
  if i < 0 || i >= task_count inst then invalid_arg "Instance: task out of range"

let check_machine inst u =
  if u < 0 || u >= inst.machines then invalid_arg "Instance: machine out of range"

let w inst i u =
  check_task inst i;
  check_machine inst u;
  inst.w.(i).(u)

let f inst i u =
  check_task inst i;
  check_machine inst u;
  inst.f.(i).(u)

let w_of_type inst j u =
  check_machine inst u;
  match Workflow.tasks_of_type inst.workflow j with
  | [] -> invalid_arg "Instance: type out of range"
  | i :: _ -> inst.w.(i).(u)

let heterogeneity inst u =
  check_machine inst u;
  Mf_numeric.Stats.population_stddev (Array.init (task_count inst) (fun i -> inst.w.(i).(u)))

let max_x inst =
  let n = task_count inst in
  let wf = inst.workflow in
  let worst_factor i =
    let fmax = Array.fold_left Float.max 0.0 inst.f.(i) in
    1.0 /. (1.0 -. fmax)
  in
  let xs = Array.make n 0.0 in
  (* Backward order guarantees the successor is filled before the task. *)
  Array.iter
    (fun i ->
      let downstream = match Workflow.successor wf i with None -> 1.0 | Some j -> xs.(j) in
      xs.(i) <- worst_factor i *. downstream)
    (Workflow.backward_order wf);
  xs

let period_upper_bound inst =
  let xs = max_x inst in
  let worst = ref 0.0 in
  for u = 0 to inst.machines - 1 do
    let acc = Mf_numeric.Kahan.create () in
    for i = 0 to task_count inst - 1 do
      Mf_numeric.Kahan.add acc (xs.(i) *. inst.w.(i).(u))
    done;
    worst := Float.max !worst (Mf_numeric.Kahan.total acc)
  done;
  !worst

let is_homogeneous inst =
  let v = inst.w.(0).(0) in
  Array.for_all (Array.for_all (fun x -> x = v)) inst.w

let failures_task_attached inst =
  Array.for_all (fun row -> Array.for_all (fun x -> x = row.(0)) row) inst.f

let pp fmt inst =
  Format.fprintf fmt "@[<v>instance: n=%d p=%d m=%d@,%a@]" (task_count inst)
    (type_count inst) inst.machines Workflow.pp inst.workflow
