let x inst mp =
  let wf = Instance.workflow inst in
  let n = Instance.task_count inst in
  let xs = Array.make n 0.0 in
  Array.iter
    (fun i ->
      let u = Mapping.machine mp i in
      let factor = 1.0 /. (1.0 -. Instance.f inst i u) in
      let downstream = match Workflow.successor wf i with None -> 1.0 | Some j -> xs.(j) in
      xs.(i) <- factor *. downstream)
    (Workflow.backward_order wf);
  xs

let x_exact inst mp =
  let module R = Mf_numeric.Rat in
  let wf = Instance.workflow inst in
  let n = Instance.task_count inst in
  let xs = Array.make n R.zero in
  Array.iter
    (fun i ->
      let u = Mapping.machine mp i in
      let factor = R.inv (R.sub R.one (R.of_float (Instance.f inst i u))) in
      let downstream = match Workflow.successor wf i with None -> R.one | Some j -> xs.(j) in
      xs.(i) <- R.mul factor downstream)
    (Workflow.backward_order wf);
  xs

let inputs_needed inst mp ~x_out =
  if x_out < 0 then invalid_arg "Products.inputs_needed: negative target";
  let xs = x inst mp in
  let wf = Instance.workflow inst in
  List.map
    (fun src -> (src, int_of_float (Float.ceil (xs.(src) *. float_of_int x_out))))
    (Workflow.sources wf)
