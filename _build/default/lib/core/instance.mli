(** A problem instance: an application workflow plus a platform
    (paper Sections 3.2 and 3.3).

    The platform is a set of [m] fully-connected machines.  Machine [u]
    performs task [i] on one product in time [w i u] (milliseconds in the
    paper's experiments) and loses the product with probability [f i u].
    Communication times are neglected, as in the paper.

    Tasks of the same type must have the same processing time on a given
    machine ([t(i) = t(i') => w(i,u) = w(i',u)]); failure probabilities are
    unconstrained.  Both are validated at construction. *)

type t

(** [create ~workflow ~machines ~w ~f] builds and validates an instance.
    [w] and [f] are [n x m] matrices indexed by task then machine.
    @raise Invalid_argument if dimensions disagree, some [w] is
    non-positive, some [f] is outside [0, 1), or [w] is not type-consistent. *)
val create :
  workflow:Workflow.t -> machines:int -> w:float array array -> f:float array array -> t

val workflow : t -> Workflow.t

(** [machines inst] is [m]. *)
val machines : t -> int

(** [task_count inst] is [n]. *)
val task_count : t -> int

(** [type_count inst] is [p]. *)
val type_count : t -> int

(** [w inst i u] is the processing time of task [i] on machine [u]. *)
val w : t -> int -> int -> float

(** [f inst i u] is the failure probability of task [i] on machine [u]. *)
val f : t -> int -> int -> float

(** [w_of_type inst j u] is the processing time of any type-[j] task on
    machine [u]. *)
val w_of_type : t -> int -> int -> float

(** {1 Derived quantities} *)

(** [heterogeneity inst u] is the population standard deviation of
    [w(., u)] over all tasks — the "heterogeneity level" that heuristic H3
    sorts machines by. *)
val heterogeneity : t -> int -> float

(** [max_x inst] is the vector of upper bounds [MAXx_i] of the MIP
    formulation: [MAXx_i = prod_{j on the path from i to its sink}
    1/(1 - max_u f(j,u))]. *)
val max_x : t -> float array

(** [period_upper_bound inst] is a period no valid mapping can exceed:
    [max_u sum_i MAXx_i * w(i,u)] — the "period of all the tasks on the
    slowest machine" initialising the binary-search heuristics. *)
val period_upper_bound : t -> float

(** [is_homogeneous inst] is true when all [w(i,u)] are equal. *)
val is_homogeneous : t -> bool

(** [failures_task_attached inst] is true when [f(i,u)] does not depend on
    [u] (the polynomial one-to-one case of Section 7.2). *)
val failures_task_attached : t -> bool

val pp : Format.formatter -> t -> unit
