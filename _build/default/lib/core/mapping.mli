(** Task-to-machine allocations and the paper's three mapping rules
    (Section 4.2).

    A mapping is the allocation function [a : tasks -> machines].  The rules
    constrain what a machine may process:

    - {b one-to-one}: a machine executes at most one task;
    - {b specialized}: a machine is dedicated to at most one task {e type};
    - {b general}: no constraint. *)

type t

(** The three rules of the game. *)
type rule = One_to_one | Specialized | General

(** [of_array inst a] wraps the allocation [a.(i) = machine of task i].
    @raise Invalid_argument if a machine index is out of range or the
    length differs from the task count. *)
val of_array : Instance.t -> int array -> t

(** [machine mp i] is the machine executing task [i]. *)
val machine : t -> int -> int

(** [to_array mp] is a copy of the underlying allocation. *)
val to_array : t -> int array

(** [tasks_on mp u] lists the tasks allocated to machine [u], increasing. *)
val tasks_on : t -> u:int -> int list

(** [satisfies inst mp rule] checks the mapping against a rule. *)
val satisfies : Instance.t -> t -> rule -> bool

(** [check inst mp rule] is [satisfies] but raises [Invalid_argument] with
    a diagnostic naming the violated constraint. *)
val check : Instance.t -> t -> rule -> unit

(** [machine_type inst mp u] is the type machine [u] is specialized to
    ([None] when it executes no task).  Meaningful for specialized
    mappings; for general mappings returns the type of the first task. *)
val machine_type : Instance.t -> t -> u:int -> int option

(** [used_machines mp] is the number of machines executing at least one
    task. *)
val used_machines : t -> int

val rule_name : rule -> string
val pp : Format.formatter -> t -> unit
