type t = {
  types : int array;
  successor : int option array;
  predecessors : int list array;
  type_count : int;
  backward : int array;
}

let validate_types types =
  let n = Array.length types in
  if n = 0 then invalid_arg "Workflow: empty task set";
  let p = 1 + Array.fold_left Stdlib.max (-1) types in
  if Array.exists (fun ty -> ty < 0) types then
    invalid_arg "Workflow: negative task type";
  let used = Array.make p false in
  Array.iter (fun ty -> used.(ty) <- true) types;
  if not (Array.for_all Fun.id used) then
    invalid_arg "Workflow: task types must form a contiguous range 0..p-1";
  p

(* Depth of each task = number of successor hops to its sink; also detects
   cycles in the successor relation. *)
let compute_depths successor =
  let n = Array.length successor in
  let depth = Array.make n (-1) in
  let rec resolve ~on_path i =
    if depth.(i) >= 0 then depth.(i)
    else if List.mem i on_path then invalid_arg "Workflow: successor relation has a cycle"
    else begin
      let d =
        match successor.(i) with
        | None -> 0
        | Some j ->
          if j < 0 || j >= n then invalid_arg "Workflow: successor out of range"
          else if j = i then invalid_arg "Workflow: successor relation has a cycle"
          else 1 + resolve ~on_path:(i :: on_path) j
      in
      depth.(i) <- d;
      d
    end
  in
  for i = 0 to n - 1 do
    ignore (resolve ~on_path:[] i)
  done;
  depth

let build types successor =
  let n = Array.length types in
  let type_count = validate_types types in
  if Array.length successor <> n then
    invalid_arg "Workflow: successor array length mismatch";
  let depth = compute_depths successor in
  let predecessors = Array.make n [] in
  for i = n - 1 downto 0 do
    match successor.(i) with
    | None -> ()
    | Some j -> predecessors.(j) <- i :: predecessors.(j)
  done;
  (* Backward order: ascending depth, then descending index so that a chain
     yields n-1, n-2, ..., 0 exactly as in the paper's algorithms. *)
  let backward = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      if depth.(a) <> depth.(b) then Stdlib.compare depth.(a) depth.(b)
      else Stdlib.compare b a)
    backward;
  { types; successor; predecessors; type_count; backward }

let chain ~types =
  let n = Array.length types in
  let successor = Array.init n (fun i -> if i = n - 1 then None else Some (i + 1)) in
  build (Array.copy types) successor

let in_forest ~types ~successor = build (Array.copy types) (Array.copy successor)

let task_count wf = Array.length wf.types
let type_count wf = wf.type_count

let check wf i =
  if i < 0 || i >= task_count wf then invalid_arg "Workflow: task out of range"

let ttype wf i =
  check wf i;
  wf.types.(i)

let successor wf i =
  check wf i;
  wf.successor.(i)

let predecessors wf i =
  check wf i;
  wf.predecessors.(i)

let sinks wf =
  List.filter (fun i -> wf.successor.(i) = None) (List.init (task_count wf) Fun.id)

let sources wf =
  List.filter (fun i -> wf.predecessors.(i) = []) (List.init (task_count wf) Fun.id)

let is_chain wf =
  let n = task_count wf in
  let ok = ref true in
  for i = 0 to n - 1 do
    let expected = if i = n - 1 then None else Some (i + 1) in
    if wf.successor.(i) <> expected then ok := false
  done;
  !ok

let backward_order wf = Array.copy wf.backward

let to_digraph wf =
  let g = Mf_graph.Digraph.create (task_count wf) in
  Array.iteri
    (fun i succ -> match succ with None -> () | Some j -> Mf_graph.Digraph.add_edge g i j)
    wf.successor;
  g

let tasks_of_type wf j =
  if j < 0 || j >= wf.type_count then invalid_arg "Workflow: type out of range";
  List.filter (fun i -> wf.types.(i) = j) (List.init (task_count wf) Fun.id)

let pp fmt wf =
  Format.fprintf fmt "@[<v>workflow: %d tasks, %d types@," (task_count wf) (type_count wf);
  Array.iteri
    (fun i succ ->
      Format.fprintf fmt "  T%d (type %d) -> %s@," i wf.types.(i)
        (match succ with None -> "out" | Some j -> Printf.sprintf "T%d" j))
    wf.successor;
  Format.fprintf fmt "@]"
