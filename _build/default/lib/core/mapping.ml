type t = { assignment : int array; machines : int }

type rule = One_to_one | Specialized | General

let of_array inst a =
  let n = Instance.task_count inst in
  let m = Instance.machines inst in
  if Array.length a <> n then invalid_arg "Mapping: allocation length mismatch";
  Array.iter
    (fun u -> if u < 0 || u >= m then invalid_arg "Mapping: machine out of range")
    a;
  { assignment = Array.copy a; machines = m }

let machine mp i =
  if i < 0 || i >= Array.length mp.assignment then invalid_arg "Mapping: task out of range";
  mp.assignment.(i)

let to_array mp = Array.copy mp.assignment

let tasks_on mp ~u =
  if u < 0 || u >= mp.machines then invalid_arg "Mapping: machine out of range";
  List.filter
    (fun i -> mp.assignment.(i) = u)
    (List.init (Array.length mp.assignment) Fun.id)

let rule_name = function
  | One_to_one -> "one-to-one"
  | Specialized -> "specialized"
  | General -> "general"

(* Returns the first violation as [Some message]. *)
let violation inst mp rule =
  let wf = Instance.workflow inst in
  match rule with
  | General -> None
  | One_to_one ->
    let owner = Array.make mp.machines (-1) in
    let bad = ref None in
    Array.iteri
      (fun i u ->
        if !bad = None then
          if owner.(u) >= 0 then
            bad :=
              Some
                (Printf.sprintf "one-to-one violated: tasks T%d and T%d share machine M%d"
                   owner.(u) i u)
          else owner.(u) <- i)
      mp.assignment;
    !bad
  | Specialized ->
    let dedicated = Array.make mp.machines (-1) in
    let bad = ref None in
    Array.iteri
      (fun i u ->
        if !bad = None then begin
          let ty = Workflow.ttype wf i in
          if dedicated.(u) >= 0 && dedicated.(u) <> ty then
            bad :=
              Some
                (Printf.sprintf
                   "specialization violated: machine M%d handles types %d and %d" u
                   dedicated.(u) ty)
          else dedicated.(u) <- ty
        end)
      mp.assignment;
    !bad

let satisfies inst mp rule = violation inst mp rule = None

let check inst mp rule =
  match violation inst mp rule with
  | None -> ()
  | Some msg -> invalid_arg ("Mapping: " ^ msg)

let machine_type inst mp ~u =
  let wf = Instance.workflow inst in
  match tasks_on mp ~u with [] -> None | i :: _ -> Some (Workflow.ttype wf i)

let used_machines mp =
  let used = Array.make mp.machines false in
  Array.iter (fun u -> used.(u) <- true) mp.assignment;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 used

let pp fmt mp =
  Format.fprintf fmt "@[<h>[";
  Array.iteri
    (fun i u ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "T%d->M%d" i u)
    mp.assignment;
  Format.fprintf fmt "]@]"
