(** Plain-text (de)serialisation of problem instances.

    The format is line-oriented and human-editable:

    {v # any number of comment lines
      tasks <n> machines <m>
      types <t(0)> ... <t(n-1)>
      successors <s(0)> ... <s(n-1)>     (-1 for final tasks)
      w <i> <w(i,0)> ... <w(i,m-1)>       (n lines)
      f <i> <f(i,0)> ... <f(i,m-1)>       (n lines) v}

    Floats are printed with full precision ([%.17g]) so write/read
    round-trips exactly. *)

val to_string : Instance.t -> string

(** @raise Invalid_argument on malformed input (with a line diagnostic). *)
val of_string : string -> Instance.t

val write_file : string -> Instance.t -> unit
val read_file : string -> Instance.t
