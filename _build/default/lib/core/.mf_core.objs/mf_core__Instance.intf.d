lib/core/instance.mli: Format Workflow
