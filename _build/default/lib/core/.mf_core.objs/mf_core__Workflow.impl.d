lib/core/workflow.ml: Array Format Fun List Mf_graph Printf Stdlib
