lib/core/products.mli: Instance Mapping Mf_numeric
