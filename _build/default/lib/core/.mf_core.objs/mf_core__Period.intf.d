lib/core/period.mli: Instance Mapping Mf_numeric
