lib/core/instance.ml: Array Float Format Mf_numeric Printf Workflow
