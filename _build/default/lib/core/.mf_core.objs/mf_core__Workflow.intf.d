lib/core/workflow.mli: Format Mf_graph
