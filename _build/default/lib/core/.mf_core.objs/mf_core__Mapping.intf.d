lib/core/mapping.mli: Format Instance
