lib/core/products.ml: Array Float Instance List Mapping Mf_numeric Workflow
