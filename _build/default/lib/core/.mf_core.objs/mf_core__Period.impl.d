lib/core/period.ml: Array Float Fun Instance List Mapping Mf_numeric Products Stdlib Workflow
