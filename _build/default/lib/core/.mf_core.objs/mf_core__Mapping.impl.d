lib/core/mapping.ml: Array Format Fun Instance List Printf Workflow
