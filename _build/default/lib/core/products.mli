(** Average product counts [x_i] (paper Section 4.1).

    [x_i] is the average number of products task [T_i] must process so that
    one product leaves the system.  With [F_i = 1/(1 - f(i, a(i)))],

    {v x_i = F_i                      if T_i is final
      x_i = F_i * x_{succ(i)}        otherwise v}

    matching Theorem 1's closed form [x_i = prod_{j >= i} F_j] on a chain:
    a final task still pays its own failure factor, because it must process
    [F_i] products on average per product leaving the system.  Joins need
    one product from each predecessor per assembled output, so the same
    recurrence applies along every branch. *)

(** [x inst mp] is the vector of [x_i] for a given mapping. *)
val x : Instance.t -> Mapping.t -> float array

(** [x_exact inst mp] computes the [x_i] in exact rational arithmetic
    (failure rates are converted with {!Mf_numeric.Rat.of_float}, which is
    exact on binary floats). *)
val x_exact : Instance.t -> Mapping.t -> Mf_numeric.Rat.t array

(** [inputs_needed inst mp ~x_out] is, per source task, the expected number
    of raw products to feed in so that [x_out] finished products leave the
    system (rounded up).  This is the guarantee discussed in Section 2. *)
val inputs_needed : Instance.t -> Mapping.t -> x_out:int -> (int * int) list
