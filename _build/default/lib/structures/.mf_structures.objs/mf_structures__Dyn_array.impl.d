lib/structures/dyn_array.ml: Array
