lib/structures/matrix.mli: Format
