lib/structures/bitset.mli:
