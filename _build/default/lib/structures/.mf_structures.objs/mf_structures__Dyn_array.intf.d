lib/structures/dyn_array.mli:
