lib/structures/matrix.ml: Array Format
