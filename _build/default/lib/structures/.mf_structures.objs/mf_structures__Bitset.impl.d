lib/structures/bitset.ml: Array List Sys
