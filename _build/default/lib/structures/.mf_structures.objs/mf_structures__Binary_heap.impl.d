lib/structures/binary_heap.ml: Array List
