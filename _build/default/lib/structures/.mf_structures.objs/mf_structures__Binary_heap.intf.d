lib/structures/binary_heap.mli:
