(** Growable arrays (a minimal vector type).

    OCaml 5.1 predates [Stdlib.Dynarray]; this fills the gap for the
    simulator's trace buffers and the LP model builder. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [get v i]. @raise Invalid_argument if out of bounds. *)
val get : 'a t -> int -> 'a

(** [set v i x]. @raise Invalid_argument if out of bounds. *)
val set : 'a t -> int -> 'a -> unit

(** [push v x] appends in amortised O(1). *)
val push : 'a t -> 'a -> unit

(** [pop v] removes and returns the last element. *)
val pop : 'a t -> 'a option

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_array : 'a array -> 'a t
