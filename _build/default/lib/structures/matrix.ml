type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: non-positive dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let rows m = m.rows
let cols m = m.cols

let check m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix: index out of bounds"

let get m i j =
  check m i j;
  m.data.((i * m.cols) + j)

let set m i j v =
  check m i j;
  m.data.((i * m.cols) + j) <- v

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let copy m = { m with data = Array.copy m.data }

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Matrix.row: out of bounds";
  Array.sub m.data (i * m.cols) m.cols

let swap_rows m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.rows then
    invalid_arg "Matrix.swap_rows: out of bounds";
  if i <> j then
    for k = 0 to m.cols - 1 do
      let tmp = m.data.((i * m.cols) + k) in
      m.data.((i * m.cols) + k) <- m.data.((j * m.cols) + k);
      m.data.((j * m.cols) + k) <- tmp
    done

let scale_row m i k =
  if i < 0 || i >= m.rows then invalid_arg "Matrix.scale_row: out of bounds";
  for c = 0 to m.cols - 1 do
    m.data.((i * m.cols) + c) <- m.data.((i * m.cols) + c) *. k
  done

let add_scaled_row m ~dst ~src k =
  if dst < 0 || dst >= m.rows || src < 0 || src >= m.rows then
    invalid_arg "Matrix.add_scaled_row: out of bounds";
  for c = 0 to m.cols - 1 do
    m.data.((dst * m.cols) + c) <-
      m.data.((dst * m.cols) + c) +. (k *. m.data.((src * m.cols) + c))
  done

let of_arrays xs =
  let rows = Array.length xs in
  if rows = 0 then invalid_arg "Matrix.of_arrays: empty";
  let cols = Array.length xs.(0) in
  if Array.exists (fun r -> Array.length r <> cols) xs then
    invalid_arg "Matrix.of_arrays: ragged rows";
  init rows cols (fun i j -> xs.(i).(j))

let to_arrays m = Array.init m.rows (row m)

let pp fmt m =
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%8.3f" (get m i j)
    done;
    Format.fprintf fmt "]@\n"
  done
