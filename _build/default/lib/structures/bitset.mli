(** Fixed-capacity bit sets over native integer words.

    Used by the exact branch-and-bound solver to represent machine
    availability masks compactly. *)

type t

(** [create n] is an empty set over the universe [{0, ..., n-1}]. *)
val create : int -> t

(** [capacity s] is the universe size given at creation. *)
val capacity : t -> int

val copy : t -> t

(** [mem s i] tests membership. @raise Invalid_argument if out of range. *)
val mem : t -> int -> bool

val add : t -> int -> unit
val remove : t -> int -> unit

(** [cardinal s] is the number of members (popcount). *)
val cardinal : t -> int

val is_empty : t -> bool
val clear : t -> unit

(** [iter f s] applies [f] to members in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f s init] folds over members in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [to_list s] lists the members in increasing order. *)
val to_list : t -> int list

(** In-place set operations; both arguments must share a capacity. *)
val union_into : t -> t -> unit

val inter_into : t -> t -> unit
val equal : t -> t -> bool
