type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length v = v.size
let is_empty v = v.size = 0

let check v i =
  if i < 0 || i >= v.size then invalid_arg "Dyn_array: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let push v x =
  let cap = Array.length v.data in
  if v.size = cap then begin
    let ncap = if cap = 0 then 8 else 2 * cap in
    let ndata = Array.make ncap x in
    Array.blit v.data 0 ndata 0 v.size;
    v.data <- ndata
  end;
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let pop v =
  if v.size = 0 then None
  else begin
    v.size <- v.size - 1;
    Some v.data.(v.size)
  end

let clear v = v.size <- 0

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.size - 1 do
    f i v.data.(i)
  done

let fold_left f init v =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) v;
  !acc

let to_array v = Array.sub v.data 0 v.size
let to_list v = Array.to_list (to_array v)

let of_array xs = { data = Array.copy xs; size = Array.length xs }
