(** Array-based binary min-heap, polymorphic in the element type.

    The ordering is supplied at creation time.  This is the event calendar
    of the discrete-event simulator and the frontier of the branch-and-bound
    solvers. *)

type 'a t

(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)
val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push h x] inserts in O(log n). *)
val push : 'a t -> 'a -> unit

(** [peek h] is the minimum element without removing it. *)
val peek : 'a t -> 'a option

(** [pop h] removes and returns the minimum element. *)
val pop : 'a t -> 'a option

(** [pop_exn h] is [pop] but raises [Not_found] on an empty heap. *)
val pop_exn : 'a t -> 'a

(** [clear h] removes every element, keeping the backing storage. *)
val clear : 'a t -> unit

(** [of_array ~cmp xs] heapifies an array in O(n). *)
val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t

(** [to_sorted_list h] drains a copy of the heap in ascending order. *)
val to_sorted_list : 'a t -> 'a list

(** [iter f h] visits elements in unspecified order. *)
val iter : ('a -> unit) -> 'a t -> unit
