let word_bits = Sys.int_size

type t = { n : int; words : int array }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Array.make ((n + word_bits - 1) / word_bits) 0 }

let capacity s = s.n
let copy s = { n = s.n; words = Array.copy s.words }

let check s i =
  if i < 0 || i >= s.n then invalid_arg "Bitset: index out of range"

let mem s i =
  check s i;
  s.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let add s i =
  check s i;
  s.words.(i / word_bits) <- s.words.(i / word_bits) lor (1 lsl (i mod word_bits))

let remove s i =
  check s i;
  s.words.(i / word_bits) <- s.words.(i / word_bits) land lnot (1 lsl (i mod word_bits))

let popcount w =
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0 w

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words
let is_empty s = Array.for_all (fun w -> w = 0) s.words
let clear s = Array.fill s.words 0 (Array.length s.words) 0

let iter f s =
  for wi = 0 to Array.length s.words - 1 do
    let w = ref s.words.(wi) in
    while !w <> 0 do
      let low = !w land - !w in
      let rec bit_index i v = if v = 1 then i else bit_index (i + 1) (v lsr 1) in
      f ((wi * word_bits) + bit_index 0 low);
      w := !w land (!w - 1)
    done
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let check_same a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let union_into dst src =
  check_same dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let inter_into dst src =
  check_same dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land w) src.words

let equal a b = a.n = b.n && a.words = b.words
