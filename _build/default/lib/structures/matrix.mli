(** Dense row-major float matrices.

    Only what the simplex tableau and the instance generators need: creation,
    indexed access, row operations and pretty-printing. *)

type t

(** [create rows cols] is a zero matrix.
    @raise Invalid_argument on non-positive dimensions. *)
val create : int -> int -> t

(** [init rows cols f] fills entry [(i,j)] with [f i j]. *)
val init : int -> int -> (int -> int -> float) -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t

(** [row m i] is a fresh array holding row [i]. *)
val row : t -> int -> float array

(** [swap_rows m i j] exchanges two rows in place. *)
val swap_rows : t -> int -> int -> unit

(** [scale_row m i k] multiplies row [i] by [k] in place. *)
val scale_row : t -> int -> float -> unit

(** [add_scaled_row m ~dst ~src k] adds [k * row src] to [row dst]. *)
val add_scaled_row : t -> dst:int -> src:int -> float -> unit

(** [of_arrays xs] builds from a rectangular array of rows.
    @raise Invalid_argument on ragged input. *)
val of_arrays : float array array -> t

val to_arrays : t -> float array array
val pp : Format.formatter -> t -> unit
