lib/exact/reduction.ml: Array Dfs Float Fun Mf_core
