lib/exact/oto.ml: Array Mf_core Mf_graph
