lib/exact/brute.ml: Array Mf_core
