lib/exact/brute.mli: Mf_core
