lib/exact/oto.mli: Mf_core
