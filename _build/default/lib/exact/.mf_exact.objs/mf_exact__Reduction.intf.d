lib/exact/reduction.mli: Mf_core
