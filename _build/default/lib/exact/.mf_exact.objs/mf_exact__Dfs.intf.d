lib/exact/dfs.mli: Mf_core
