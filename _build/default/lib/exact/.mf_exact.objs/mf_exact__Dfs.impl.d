lib/exact/dfs.ml: Array Float List Mf_core Mf_heuristics
