module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period

let require_enough_machines inst =
  if Instance.task_count inst > Instance.machines inst then
    invalid_arg "Oto: one-to-one mappings need at least as many machines as tasks"

let theorem1 inst =
  let wf = Instance.workflow inst in
  if not (Workflow.is_chain wf) then invalid_arg "Oto.theorem1: application must be a chain";
  if not (Instance.is_homogeneous inst) then
    invalid_arg "Oto.theorem1: machines must be homogeneous";
  require_enough_machines inst;
  let n = Instance.task_count inst and m = Instance.machines inst in
  let cost =
    Array.init n (fun i -> Array.init m (fun u -> -.log (1.0 -. Instance.f inst i u)))
  in
  let assignment, _ = Mf_graph.Hungarian.solve cost in
  let mp = Mapping.of_array inst assignment in
  (mp, Period.period inst mp)

let bottleneck inst =
  if not (Instance.failures_task_attached inst) then
    invalid_arg "Oto.bottleneck: failure rates must be attached to tasks only";
  require_enough_machines inst;
  let n = Instance.task_count inst and m = Instance.machines inst in
  let wf = Instance.workflow inst in
  (* Mapping-independent product counts. *)
  let x = Array.make n 0.0 in
  Array.iter
    (fun i ->
      let downstream = match Workflow.successor wf i with None -> 1.0 | Some j -> x.(j) in
      x.(i) <- downstream /. (1.0 -. Instance.f inst i 0))
    (Workflow.backward_order wf);
  let cost = Array.init n (fun i -> Array.init m (fun u -> x.(i) *. Instance.w inst i u)) in
  let assignment, value = Mf_graph.Bottleneck.solve cost in
  (Mapping.of_array inst assignment, value)
