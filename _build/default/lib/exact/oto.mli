(** Optimal one-to-one mappings for the polynomial cases (paper Section 5.1
    and the "OtO" reference curve of Section 7.2).

    Two cases are solvable in polynomial time:

    - {b Theorem 1}: linear chain on homogeneous machines
      ([w(i,u) = w]).  The period is paced by the first task,
      [period = w * prod_j F_j], so minimizing the period reduces to a
      min-weight perfect matching with costs [-log(1 - f(i,u))]
      (Hungarian algorithm).

    - {b Task-attached failures} ([f(i,u) = f_i], Section 7.2).  The
      product counts [x_i] do not depend on the mapping, each machine runs
      one task, and the period is [max_i x_i * w(i, a(i))] — a bottleneck
      assignment. *)

(** [theorem1 inst] computes the optimal one-to-one mapping of Theorem 1.
    @raise Invalid_argument if the application is not a chain, the
    machines are not homogeneous, or [n > m]. *)
val theorem1 : Mf_core.Instance.t -> Mf_core.Mapping.t * float

(** [bottleneck inst] computes the optimal one-to-one mapping when failure
    rates are attached to tasks only.
    @raise Invalid_argument if failures depend on machines or [n > m]. *)
val bottleneck : Mf_core.Instance.t -> Mf_core.Mapping.t * float
