module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Rng = Mf_prng.Rng

let run rng inst =
  let eng = Engine.create inst in
  let wf = Instance.workflow inst in
  Array.iter
    (fun task ->
      let ty = Workflow.ttype wf task in
      let eligible = Engine.eligible_machines eng ~task in
      let fresh, dedicated =
        List.partition (fun u -> Engine.dedicated eng u = None) eligible
      in
      (* Algorithm 1: open a new group whenever the reservation allows it
         (fresh machines eligible), otherwise join an existing group of the
         task's type.  Both picks are uniform. *)
      let pick =
        match (fresh, dedicated) with
        | [], [] ->
          invalid_arg
            (Printf.sprintf "H1: no machine available for task T%d of type %d" task ty)
        | [], d -> Rng.choose rng (Array.of_list d)
        | f, _ -> Rng.choose rng (Array.of_list f)
      in
      Engine.assign eng ~task ~machine:pick)
    (Engine.order eng);
  Engine.mapping eng
