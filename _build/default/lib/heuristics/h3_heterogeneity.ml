module Instance = Mf_core.Instance

let run inst =
  let h = Array.init (Instance.machines inst) (Instance.heterogeneity inst) in
  let policy eng ~task ~budget =
    let best = ref None in
    List.iter
      (fun u ->
        let exec = Engine.exec_if eng ~task ~machine:u in
        if exec <= budget then
          match !best with
          | None -> best := Some (u, exec)
          | Some (bu, bexec) ->
            if h.(u) > h.(bu) || (h.(u) = h.(bu) && exec < bexec) then best := Some (u, exec))
      (Engine.eligible_machines eng ~task);
    Option.map fst !best
  in
  Binary_search.run inst policy
