lib/heuristics/greedy.ml: Array Engine List Mf_core
