lib/heuristics/greedy.mli: Mf_core
