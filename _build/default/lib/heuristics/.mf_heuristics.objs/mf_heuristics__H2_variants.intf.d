lib/heuristics/h2_variants.mli: Mf_core
