lib/heuristics/h2_variants.ml: Array Binary_search Engine Float H2_potential List Mf_core Stdlib
