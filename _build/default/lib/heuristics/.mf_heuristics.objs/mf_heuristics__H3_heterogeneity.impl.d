lib/heuristics/h3_heterogeneity.ml: Array Binary_search Engine List Mf_core Option
