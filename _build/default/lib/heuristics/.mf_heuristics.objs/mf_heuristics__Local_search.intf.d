lib/heuristics/local_search.mli: Mf_core
