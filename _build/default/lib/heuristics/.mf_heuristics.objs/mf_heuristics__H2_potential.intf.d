lib/heuristics/h2_potential.mli: Mf_core
