lib/heuristics/registry.ml: H1_random H2_potential H3_heterogeneity H4_family Mf_prng String
