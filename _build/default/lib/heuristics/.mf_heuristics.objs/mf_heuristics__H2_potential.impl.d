lib/heuristics/h2_potential.ml: Array Binary_search Engine Float Fun List Mf_core
