lib/heuristics/engine.ml: Array Fun List Mf_core
