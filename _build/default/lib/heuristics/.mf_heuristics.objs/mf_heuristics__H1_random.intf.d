lib/heuristics/h1_random.mli: Mf_core Mf_prng
