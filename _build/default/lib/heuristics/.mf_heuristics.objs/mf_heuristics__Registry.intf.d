lib/heuristics/registry.mli: Mf_core
