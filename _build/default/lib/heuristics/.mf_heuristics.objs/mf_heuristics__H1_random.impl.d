lib/heuristics/h1_random.ml: Array Engine List Mf_core Mf_prng Printf
