lib/heuristics/h3_heterogeneity.mli: Mf_core
