lib/heuristics/annealing.mli: Mf_core Mf_prng
