lib/heuristics/annealing.ml: Array Mf_core Mf_prng
