lib/heuristics/h4_family.ml: Greedy
