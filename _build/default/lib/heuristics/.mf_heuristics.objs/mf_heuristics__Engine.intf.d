lib/heuristics/engine.mli: Mf_core
