lib/heuristics/h4_family.mli: Mf_core
