lib/heuristics/binary_search.ml: Array Engine Mf_core
