lib/heuristics/local_search.ml: Array Mf_core
