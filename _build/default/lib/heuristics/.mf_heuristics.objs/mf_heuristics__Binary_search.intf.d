lib/heuristics/binary_search.mli: Engine Mf_core
