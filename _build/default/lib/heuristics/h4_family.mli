(** The H4 family of greedy heuristics (Algorithms 4, 5 and 6).

    Each task (backward) is placed on the machine minimizing a score built
    from the machine's accumulated load and the task's candidate
    contribution:

    - {b H4} (best performance): [load + x * w * f] — balances speed and
      reliability;
    - {b H4w} (fastest machine): [load + x * w] — ignores failure rates;
      the paper's overall winner;
    - {b H4f} (most reliable machine): [load + x * f] — ignores speed;
      shown to be non-competitive. *)

val h4 : Mf_core.Instance.t -> Mf_core.Mapping.t
val h4w : Mf_core.Instance.t -> Mf_core.Mapping.t
val h4f : Mf_core.Instance.t -> Mf_core.Mapping.t
