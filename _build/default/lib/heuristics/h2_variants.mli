(** Prose variants of the binary-search heuristics.

    The paper's Algorithm 2 and its prose disagree: the pseudo-code rejects
    a binary-search round as soon as the {e single} best-rank machine would
    exceed the period budget, while the text says "Otherwise we try to
    assign Ti to the next machine, according to their priority order for
    this task.  If no machine is able to process Ti, then no assignment is
    found."

    {!H2_potential} implements the pseudo-code (it reproduces the paper's
    measured H2-vs-optimal factors).  This module implements the prose
    reading for H2 — and the analogous retry strategy for H3 — so the two
    interpretations can be compared; the retry variants are strictly
    stronger (they accept whenever the strict ones do, at equal budget). *)

(** [h2_retry inst]: machines tried by increasing (rank, w) until one fits
    the budget. *)
val h2_retry : Mf_core.Instance.t -> Mf_core.Mapping.t

(** [h3_retry inst]: machines tried by decreasing heterogeneity until one
    fits the budget (identical to H3's "most heterogeneous feasible"
    reading, kept for symmetry and head-to-head benching). *)
val h3_retry : Mf_core.Instance.t -> Mf_core.Mapping.t
