module Instance = Mf_core.Instance

let h2_retry inst =
  let rank = H2_potential.compute_ranks inst in
  let policy eng ~task ~budget =
    let by_priority =
      List.sort
        (fun a b ->
          if rank.(task).(a) <> rank.(task).(b) then
            Stdlib.compare rank.(task).(a) rank.(task).(b)
          else Float.compare (Instance.w inst task a) (Instance.w inst task b))
        (Engine.eligible_machines eng ~task)
    in
    List.find_opt (fun u -> Engine.exec_if eng ~task ~machine:u <= budget) by_priority
  in
  Binary_search.run inst policy

let h3_retry inst =
  let h = Array.init (Instance.machines inst) (Instance.heterogeneity inst) in
  let policy eng ~task ~budget =
    let by_priority =
      List.sort
        (fun a b -> Float.compare h.(b) h.(a))
        (Engine.eligible_machines eng ~task)
    in
    List.find_opt (fun u -> Engine.exec_if eng ~task ~machine:u <= budget) by_priority
  in
  Binary_search.run inst policy
