module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping

type t = {
  inst : Instance.t;
  order : int array;
  dedicated : int array; (* machine -> type, or -1 *)
  load : float array;
  x : float array; (* product counts of assigned tasks *)
  assignment : int array; (* task -> machine, or -1 *)
  type_covered : bool array;
  mutable free_machines : int;
  mutable n_types_to_go : int;
}

let create inst =
  let m = Instance.machines inst in
  let p = Instance.type_count inst in
  if m < p then
    invalid_arg "Engine: fewer machines than task types - no specialized mapping exists";
  {
    inst;
    order = Workflow.backward_order (Instance.workflow inst);
    dedicated = Array.make m (-1);
    load = Array.make m 0.0;
    x = Array.make (Instance.task_count inst) nan;
    assignment = Array.make (Instance.task_count inst) (-1);
    type_covered = Array.make p false;
    free_machines = m;
    n_types_to_go = p;
  }

let instance eng = eng.inst
let order eng = Array.copy eng.order

let load eng u =
  if u < 0 || u >= Array.length eng.load then invalid_arg "Engine.load: machine out of range";
  eng.load.(u)

let dedicated eng u =
  if u < 0 || u >= Array.length eng.dedicated then
    invalid_arg "Engine.dedicated: machine out of range";
  if eng.dedicated.(u) < 0 then None else Some eng.dedicated.(u)

let x_succ eng task =
  match Workflow.successor (Instance.workflow eng.inst) task with
  | None -> 1.0
  | Some j ->
    if eng.assignment.(j) < 0 then
      invalid_arg "Engine: successor not yet assigned (backward order violated)"
    else eng.x.(j)

let x_candidate eng ~task ~machine =
  x_succ eng task /. (1.0 -. Instance.f eng.inst task machine)

let exec_if eng ~task ~machine =
  eng.load.(machine)
  +. (x_candidate eng ~task ~machine *. Instance.w eng.inst task machine)

let eligible eng ~task ~machine =
  let ty = Workflow.ttype (Instance.workflow eng.inst) task in
  let d = eng.dedicated.(machine) in
  if d >= 0 then d = ty
  else if not eng.type_covered.(ty) then true
  else eng.free_machines > eng.n_types_to_go

let eligible_machines eng ~task =
  List.filter
    (fun u -> eligible eng ~task ~machine:u)
    (List.init (Instance.machines eng.inst) Fun.id)

let assign eng ~task ~machine =
  if eng.assignment.(task) >= 0 then invalid_arg "Engine.assign: task already assigned";
  if not (eligible eng ~task ~machine) then
    invalid_arg "Engine.assign: machine not eligible for this task";
  let ty = Workflow.ttype (Instance.workflow eng.inst) task in
  let x = x_candidate eng ~task ~machine in
  if eng.dedicated.(machine) < 0 then begin
    eng.dedicated.(machine) <- ty;
    eng.free_machines <- eng.free_machines - 1;
    if not eng.type_covered.(ty) then begin
      eng.type_covered.(ty) <- true;
      eng.n_types_to_go <- eng.n_types_to_go - 1
    end
  end;
  eng.x.(task) <- x;
  eng.assignment.(task) <- machine;
  eng.load.(machine) <- eng.load.(machine) +. (x *. Instance.w eng.inst task machine)

let reset eng =
  Array.fill eng.dedicated 0 (Array.length eng.dedicated) (-1);
  Array.fill eng.load 0 (Array.length eng.load) 0.0;
  Array.fill eng.x 0 (Array.length eng.x) nan;
  Array.fill eng.assignment 0 (Array.length eng.assignment) (-1);
  Array.fill eng.type_covered 0 (Array.length eng.type_covered) false;
  eng.free_machines <- Instance.machines eng.inst;
  eng.n_types_to_go <- Instance.type_count eng.inst

let mapping eng =
  if Array.exists (fun u -> u < 0) eng.assignment then
    invalid_arg "Engine.mapping: incomplete assignment";
  Mapping.of_array eng.inst eng.assignment

let free_machines eng = eng.free_machines
let types_to_go eng = eng.n_types_to_go
