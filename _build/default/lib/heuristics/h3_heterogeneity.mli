(** Heuristic H3 — binary search preferring heterogeneous machines
    (Algorithm 3).

    The heterogeneity level of a machine is the standard deviation of its
    processing times over all tasks.  Under a candidate period, each task
    goes to the {e most heterogeneous} machine whose load stays within the
    budget (ties broken by the smaller resulting load), the idea being to
    preserve homogeneous machines for the remaining tasks. *)

val run : Mf_core.Instance.t -> Mf_core.Mapping.t
