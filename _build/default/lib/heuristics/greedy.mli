(** Greedy backward assignment parameterised by a machine score — the
    common skeleton of heuristics H4, H4w and H4f (Algorithms 4-6).

    Each task (in backward order) goes to the eligible machine minimizing
    the score; the score sees the machine's current load, the candidate
    product count [x_i], the processing time and the failure rate. *)

type score =
  load:float -> x:float -> w:float -> f:float -> float
(** [score ~load ~x ~w ~f] ranks a candidate machine (lower is better). *)

(** [run inst score] builds a specialized mapping greedily.  Ties are
    broken toward the lower machine index, like the paper's "forall machine
    Mu" scan.
    @raise Invalid_argument when [m < p]. *)
val run : Mf_core.Instance.t -> score -> Mf_core.Mapping.t
