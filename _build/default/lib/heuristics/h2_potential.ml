module Instance = Mf_core.Instance

(* rank.(i).(u) = rank of task i in the ascending w(.,u) order of machine u. *)
let compute_ranks inst =
  let n = Instance.task_count inst and m = Instance.machines inst in
  let rank = Array.make_matrix n m 0 in
  for u = 0 to m - 1 do
    let tasks = Array.init n Fun.id in
    Array.sort (fun a b -> Float.compare (Instance.w inst a u) (Instance.w inst b u)) tasks;
    Array.iteri (fun pos i -> rank.(i).(u) <- pos) tasks
  done;
  rank

(* Algorithm 2: the candidate is the single best machine by (rank, w) among
   the eligible ones, chosen without looking at the load; if its load would
   exceed the budget, the whole round fails and the binary search widens
   the period.  (The prose sketches retrying lower-priority machines, but
   the pseudo-code — which generated the paper's plots — does not.) *)
let run inst =
  let rank = compute_ranks inst in
  let policy eng ~task ~budget =
    let best = ref None in
    List.iter
      (fun u ->
        let better =
          match !best with
          | None -> true
          | Some bu ->
            rank.(task).(u) < rank.(task).(bu)
            || (rank.(task).(u) = rank.(task).(bu)
               && Instance.w inst task u < Instance.w inst task bu)
        in
        if better then best := Some u)
      (Engine.eligible_machines eng ~task);
    match !best with
    | None -> None
    | Some u -> if Engine.exec_if eng ~task ~machine:u <= budget then Some u else None
  in
  Binary_search.run inst policy
