let h4 inst = Greedy.run inst (fun ~load ~x ~w ~f -> load +. (x *. w *. f))
let h4w inst = Greedy.run inst (fun ~load ~x ~w ~f:_ -> load +. (x *. w))
let h4f inst = Greedy.run inst (fun ~load ~x ~w:_ ~f -> load +. (x *. f))
