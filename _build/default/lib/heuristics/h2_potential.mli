(** Heuristic H2 — binary search with potential optimization (Algorithm 2).

    For every machine, the tasks are ranked by increasing processing time;
    [rank(i,u)] is the position of task [i] in machine [u]'s preference
    list.  Under a candidate period, each task goes to the single eligible
    machine of minimal (rank, w); if that machine's load would exceed the
    budget the whole round fails, as in the paper's pseudo-code (the prose
    suggests retrying lower-priority machines instead — that reading lives
    in {!H2_variants}).  A binary search on the period then tightens the
    budget as long as a full assignment exists. *)

val run : Mf_core.Instance.t -> Mf_core.Mapping.t

(** [compute_ranks inst] is the rank matrix: [rank.(i).(u)] is the position
    of task [i] in machine [u]'s ascending-[w] preference list (shared with
    the prose variant in {!H2_variants}). *)
val compute_ranks : Mf_core.Instance.t -> int array array
