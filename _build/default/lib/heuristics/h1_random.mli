(** Heuristic H1 — random grouping (Algorithm 1).

    Walking the tasks backward, each task joins a machine chosen at random:
    a fresh machine when its type is new (or when spare machines remain
    beyond the reservation for uncovered types), otherwise a random machine
    already dedicated to its type.  This is the paper's baseline; the
    evaluation shows it is dominated by every informed heuristic. *)

val run : Mf_prng.Rng.t -> Mf_core.Instance.t -> Mf_core.Mapping.t
