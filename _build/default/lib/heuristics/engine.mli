(** Shared state of the backward-assignment heuristics (paper Section 6.2).

    All six heuristics traverse the tasks "starting with the last task of
    the application graph and going backward to the first one", maintaining
    for every machine its dedicated type and accumulated load, and for every
    assigned task its product count [x_i].  Because the traversal is
    backward, the successor of the current task is always already assigned,
    so [x_i] is known exactly for each candidate machine.

    The engine also enforces a feasibility reservation absent from the
    paper's pseudo-code: a {e free} machine may open a new group for an
    already-covered type only while strictly more free machines remain than
    types still lacking a machine.  This guarantees every heuristic always
    completes whenever [m >= p], without changing behaviour on the paper's
    instances (where starvation is only a measure-zero corner case). *)

type t

(** [create inst] initialises empty state.
    @raise Invalid_argument when the platform has fewer machines than the
    application has types ([m < p]), in which case no specialized mapping
    exists. *)
val create : Mf_core.Instance.t -> t

val instance : t -> Mf_core.Instance.t

(** [order eng] is the backward traversal order (successors first). *)
val order : t -> int array

(** [load eng u] is the current period contribution
    [sum of x_j * w(j,u)] of machine [u]. *)
val load : t -> int -> float

(** [dedicated eng u] is the type machine [u] is locked to, if any. *)
val dedicated : t -> int -> int option

(** [x_candidate eng ~task ~machine] is the product count [x_task] if
    [task] were placed on [machine]: [x_succ / (1 - f(task,machine))]. *)
val x_candidate : t -> task:int -> machine:int -> float

(** [exec_if eng ~task ~machine] is the load machine [machine] would carry
    after receiving [task] — the [exec_u] quantity of Algorithms 2-6. *)
val exec_if : t -> task:int -> machine:int -> float

(** [eligible eng ~task ~machine] is true when [machine] may receive
    [task]: it is dedicated to the task's type, or free and allowed by the
    reservation rule. *)
val eligible : t -> task:int -> machine:int -> bool

(** [eligible_machines eng ~task] lists eligible machines in increasing
    index order. *)
val eligible_machines : t -> task:int -> int list

(** [assign eng ~task ~machine] commits the assignment, updating loads,
    dedication and [x].
    @raise Invalid_argument if the machine is not eligible or the task's
    successor is not yet assigned. *)
val assign : t -> task:int -> machine:int -> unit

(** [reset eng] clears all assignments (used between binary-search
    rounds). *)
val reset : t -> unit

(** [mapping eng] extracts the completed mapping.
    @raise Invalid_argument if some task is still unassigned. *)
val mapping : t -> Mf_core.Mapping.t

(** [free_machines eng] and [types_to_go eng] expose the reservation
    counters (for tests). *)
val free_machines : t -> int

val types_to_go : t -> int
