module Instance = Mf_core.Instance

type score = load:float -> x:float -> w:float -> f:float -> float

let run inst score =
  let eng = Engine.create inst in
  Array.iter
    (fun task ->
      let best = ref (-1) and best_score = ref infinity in
      List.iter
        (fun u ->
          let s =
            score ~load:(Engine.load eng u)
              ~x:(Engine.x_candidate eng ~task ~machine:u)
              ~w:(Instance.w inst task u) ~f:(Instance.f inst task u)
          in
          if s < !best_score then begin
            best := u;
            best_score := s
          end)
        (Engine.eligible_machines eng ~task);
      assert (!best >= 0);
      Engine.assign eng ~task ~machine:!best)
    (Engine.order eng);
  Engine.mapping eng
