(** Simulated annealing over specialized mappings (extension beyond the
    paper).

    The state space is the set of valid specialized mappings; moves are
    random task reassignments and group swaps (the {!Local_search}
    neighbourhoods, sampled instead of enumerated).  The acceptance rule is
    Metropolis with a geometric cooling schedule.  The best state ever
    visited is returned, so the result never degrades the initial
    mapping. *)

type params = {
  initial_temperature : float;  (** in period units; scaled per instance *)
  cooling : float;  (** multiplier per step, in (0, 1) *)
  steps : int;
}

(** Defaults: temperature = half the initial period, cooling 0.995,
    3000 steps. *)
val default_params : params

(** [run ?params rng inst mp] anneals from the given specialized mapping.
    @raise Invalid_argument if [mp] is not specialized for [inst]. *)
val run :
  ?params:params ->
  Mf_prng.Rng.t ->
  Mf_core.Instance.t ->
  Mf_core.Mapping.t ->
  Mf_core.Mapping.t
