(** Binary search on the period — the skeleton shared by heuristics H2 and
    H3 (Algorithms 2 and 3).

    The search runs between 0 and {!Mf_core.Instance.period_upper_bound}
    (the "period of all the tasks on the slowest machine").  For each
    candidate period, tasks are assigned backward by a caller-supplied
    policy that must respect the period budget; a successful full
    assignment tightens the upper bound, a failure raises the lower bound.
    As in the paper, the search stops when the bracket closes below 1 ms. *)

(** A policy picks a machine for [task] given the current engine state and
    the period budget, or returns [None] when no machine fits. *)
type policy = Engine.t -> task:int -> budget:float -> int option

(** [run inst policy] returns the best mapping found.  The upper bound is
    always feasible, so a mapping is always returned when [m >= p].
    @raise Invalid_argument when [m < p]. *)
val run : Mf_core.Instance.t -> policy -> Mf_core.Mapping.t
