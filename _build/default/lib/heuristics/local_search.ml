module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period

(* The mapping is manipulated as a raw allocation array; candidate moves are
   evaluated by full period recomputation, which is O(n + m) each and keeps
   the code obviously correct. *)

let period_of inst a = Period.period inst (Mapping.of_array inst a)

(* Machine u may host type ty under allocation a (ignoring task [except]). *)
let machine_accepts inst a ~u ~ty ~except =
  let wf = Instance.workflow inst in
  let ok = ref true in
  Array.iteri
    (fun i ui -> if i <> except && ui = u && Workflow.ttype wf i <> ty then ok := false)
    a;
  !ok

let best_task_move inst a current =
  let wf = Instance.workflow inst in
  let n = Instance.task_count inst and m = Instance.machines inst in
  let best = ref None in
  for i = 0 to n - 1 do
    let ty = Workflow.ttype wf i in
    let original = a.(i) in
    for u = 0 to m - 1 do
      if u <> original && machine_accepts inst a ~u ~ty ~except:i then begin
        a.(i) <- u;
        let p = period_of inst a in
        a.(i) <- original;
        let improves =
          match !best with None -> p < current | Some (_, _, bp) -> p < bp
        in
        if improves then best := Some (i, u, p)
      end
    done
  done;
  !best

let best_group_swap inst a current =
  let m = Instance.machines inst in
  let best = ref None in
  let swap u v =
    Array.iteri (fun i ui -> if ui = u then a.(i) <- v else if ui = v then a.(i) <- u) a
  in
  for u = 0 to m - 1 do
    for v = u + 1 to m - 1 do
      swap u v;
      let p = period_of inst a in
      swap u v;
      let improves = match !best with None -> p < current | Some (_, _, bp) -> p < bp in
      if improves then best := Some (u, v, p)
    done
  done;
  !best

let improve ?(max_rounds = 100) inst mp =
  let a = Mapping.to_array mp in
  let current = ref (period_of inst a) in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < max_rounds do
    incr rounds;
    improved := false;
    let move = best_task_move inst a !current in
    let swap = best_group_swap inst a !current in
    let apply_move (i, u, p) =
      a.(i) <- u;
      current := p;
      improved := true
    in
    let apply_swap (u, v, p) =
      Array.iteri (fun i ui -> if ui = u then a.(i) <- v else if ui = v then a.(i) <- u) a;
      current := p;
      improved := true
    in
    match (move, swap) with
    | None, None -> ()
    | Some mv, None -> apply_move mv
    | None, Some sw -> apply_swap sw
    | Some ((_, _, pm) as mv), Some ((_, _, ps) as sw) ->
      if pm <= ps then apply_move mv else apply_swap sw
  done;
  Mapping.of_array inst a
