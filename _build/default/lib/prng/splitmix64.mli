(** SplitMix64 pseudo-random generator (Steele, Lea & Flood, 2014).

    A tiny, statistically solid generator with a 64-bit state.  Used here to
    seed {!Xoshiro256} and to derive independent streams from a single user
    seed, so that every experiment of the reproduction is deterministic. *)

type t

(** [create seed] makes a generator from an arbitrary 64-bit seed. *)
val create : int64 -> t

(** [copy t] is an independent generator with the same state. *)
val copy : t -> t

(** [next t] advances the state and returns the next 64-bit output. *)
val next : t -> int64
