type t = Xoshiro256.t

let create seed = Xoshiro256.create (Int64.of_int seed)
let copy = Xoshiro256.copy
let split = Xoshiro256.split
let int64 = Xoshiro256.next

(* 53 random mantissa bits, uniform in [0,1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (Xoshiro256.next t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float t bound =
  if bound <= 0.0 then invalid_arg "Rng.float: non-positive bound";
  unit_float t *. bound

let uniform t ~lo ~hi =
  if hi <= lo then invalid_arg "Rng.uniform: empty range";
  lo +. (unit_float t *. (hi -. lo))

(* Unbiased bounded integers by rejection sampling on the top bits. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (Xoshiro256.next t) 1 in
    let v = Int64.rem raw bound64 in
    (* Reject draws from the final partial block. *)
    if Int64.sub raw v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let int_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (Xoshiro256.next t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false else if p >= 1.0 then true else unit_float t < p

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: non-positive rate";
  (* 1 - u is in (0, 1], so the log is finite. *)
  -.log (1.0 -. unit_float t) /. rate

let shuffle t xs =
  for i = Array.length xs - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = xs.(i) in
    xs.(i) <- xs.(j);
    xs.(j) <- tmp
  done

let choose t xs =
  if Array.length xs = 0 then invalid_arg "Rng.choose: empty array";
  xs.(int t (Array.length xs))
