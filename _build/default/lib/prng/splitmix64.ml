type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)
