lib/prng/rng.mli:
