(** xoshiro256** 1.0 (Blackman & Vigna, 2018).

    The workhorse generator: 256-bit state, period [2^256 - 1], excellent
    statistical quality and a cheap [jump] for splitting into
    non-overlapping streams. *)

type t

(** [create seed] seeds the 256-bit state from a 64-bit seed through
    SplitMix64, as recommended by the authors.  The resulting state is never
    all-zero. *)
val create : int64 -> t

val copy : t -> t

(** [next t] is the next 64-bit output. *)
val next : t -> int64

(** [jump t] advances [t] by 2^128 steps in place: calling [jump] on copies
    yields non-overlapping substreams. *)
val jump : t -> unit

(** [split t] returns a fresh generator 2^128 steps ahead and advances [t]
    likewise, so the two never overlap. *)
val split : t -> t
