(** High-level deterministic random source.

    A thin, typed front-end over {!Xoshiro256} providing the draw primitives
    the reproduction needs: uniform reals (processing times), uniform
    integers, Bernoulli trials (product losses), exponentials and
    shuffles.  Never touches [Stdlib.Random]; all randomness in the
    repository flows from an explicit seed through this module. *)

type t

(** [create seed] builds a generator from a non-negative integer seed. *)
val create : int -> t

(** [copy t] duplicates the state. *)
val copy : t -> t

(** [split t] derives an independent, non-overlapping generator; [t] is
    advanced past the child's stream. *)
val split : t -> t

(** [int64 t] is a uniform 64-bit value. *)
val int64 : t -> int64

(** [float t bound] is uniform in [[0, bound)]. [bound] must be positive. *)
val float : t -> float -> float

(** [uniform t ~lo ~hi] is uniform in [[lo, hi)].
    @raise Invalid_argument if [hi <= lo]. *)
val uniform : t -> lo:float -> hi:float -> float

(** [int t bound] is uniform in [[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [int_range t ~lo ~hi] is uniform in the inclusive range [[lo, hi]].
    @raise Invalid_argument if [hi < lo]. *)
val int_range : t -> lo:int -> hi:int -> int

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)
val bernoulli : t -> float -> bool

(** [exponential t ~rate] draws from Exp(rate).
    @raise Invalid_argument if [rate <= 0]. *)
val exponential : t -> rate:float -> float

(** [shuffle t xs] permutes [xs] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t xs] picks a uniform element.
    @raise Invalid_argument on an empty array. *)
val choose : t -> 'a array -> 'a
