lib/sim/metrics.mli: Desim Mf_core
