lib/sim/calendar.mli:
