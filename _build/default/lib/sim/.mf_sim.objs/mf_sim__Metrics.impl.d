lib/sim/metrics.ml: Array Buffer Desim Float Fun List Mf_core Printf
