lib/sim/desim.ml: Array Calendar Event Float List Mf_core Mf_prng Option Stdlib
