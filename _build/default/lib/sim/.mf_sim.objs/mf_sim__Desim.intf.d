lib/sim/desim.mli: Event Mf_core
