lib/sim/event.ml: Format
