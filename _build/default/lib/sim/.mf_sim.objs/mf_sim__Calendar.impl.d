lib/sim/calendar.ml: Float Mf_structures Stdlib
