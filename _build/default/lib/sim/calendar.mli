(** Event calendar: a time-ordered queue of machine-completion events.

    Entries carry a monotone sequence number so that simultaneous events
    fire in insertion order — the simulator is fully deterministic for a
    given seed. *)

type 'a t

val create : unit -> 'a t

(** [schedule cal ~time payload] enqueues an occurrence. *)
val schedule : 'a t -> time:float -> 'a -> unit

(** [next cal] pops the earliest occurrence as [(time, payload)]. *)
val next : 'a t -> (float * 'a) option

val is_empty : 'a t -> bool
val length : 'a t -> int
