type t =
  | Start of { time : float; task : int; machine : int }
  | Complete of { time : float; task : int; machine : int; lost : bool }
  | Output of { time : float }

let time = function
  | Start { time; _ } | Complete { time; _ } | Output { time } -> time

let pp fmt = function
  | Start { time; task; machine } ->
    Format.fprintf fmt "%10.2f start    T%d on M%d" time task machine
  | Complete { time; task; machine; lost } ->
    Format.fprintf fmt "%10.2f complete T%d on M%d%s" time task machine
      (if lost then " (product lost)" else "")
  | Output { time } -> Format.fprintf fmt "%10.2f output" time

let to_string e = Format.asprintf "%a" pp e
