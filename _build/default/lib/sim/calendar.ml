module Heap = Mf_structures.Binary_heap

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = { heap : 'a entry Heap.t; mutable seq : int }

let compare_entry a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Stdlib.compare a.seq b.seq

let create () = { heap = Heap.create ~cmp:compare_entry; seq = 0 }

let schedule cal ~time payload =
  if Float.is_nan time || time < 0.0 then invalid_arg "Calendar.schedule: bad time";
  Heap.push cal.heap { time; seq = cal.seq; payload };
  cal.seq <- cal.seq + 1

let next cal =
  match Heap.pop cal.heap with
  | None -> None
  | Some { time; payload; _ } -> Some (time, payload)

let is_empty cal = Heap.is_empty cal.heap
let length cal = Heap.length cal.heap
