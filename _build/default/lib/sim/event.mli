(** Simulation events, exposed for tracing and tests. *)

type t =
  | Start of { time : float; task : int; machine : int }
      (** a machine begins one execution of a task *)
  | Complete of { time : float; task : int; machine : int; lost : bool }
      (** the execution finished; [lost] when the product was destroyed *)
  | Output of { time : float }  (** one finished product left the system *)

val time : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string
