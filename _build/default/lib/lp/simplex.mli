(** Two-phase primal simplex on the full tableau, functorised over an
    ordered field.

    The float instance solves the LP relaxations inside branch-and-bound;
    the exact-rational instance ({!Mf_numeric.Ordered_field.Rat_field})
    cross-checks it in the test-suite, where "numerically zero" really
    means zero.

    Bland's anti-cycling rule is used throughout, so termination is
    guaranteed.  Problems must be given in standard form
    [min c'x  s.t.  Ax = b, x >= 0]; {!Standardize} converts general
    models. *)

module Make (F : Mf_numeric.Ordered_field.S) : sig
  type outcome =
    | Optimal of F.t array * F.t  (** primal solution and objective value *)
    | Infeasible
    | Unbounded

  (** [solve ~a ~b ~c] minimizes [c'x] subject to [a x = b], [x >= 0].
      Rows with negative [b] are negated internally.
      @raise Invalid_argument on dimension mismatches. *)
  val solve : a:F.t array array -> b:F.t array -> c:F.t array -> outcome
end

(** Float instance, used by {!Branch_bound}. *)
module Float_solver : module type of Make (Mf_numeric.Ordered_field.Float_field)

(** Exact rational instance. *)
module Rat_solver : module type of Make (Mf_numeric.Ordered_field.Rat_field)
