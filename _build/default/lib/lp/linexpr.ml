module Imap = Map.Make (Int)

type t = { terms : float Imap.t; constant : float }

let zero = { terms = Imap.empty; constant = 0.0 }

let normalize terms = Imap.filter (fun _ c -> c <> 0.0) terms

let var ?(coeff = 1.0) v =
  if v < 0 then invalid_arg "Linexpr.var: negative variable id";
  { terms = normalize (Imap.singleton v coeff); constant = 0.0 }

let const c = { terms = Imap.empty; constant = c }

let add a b =
  {
    terms =
      normalize
        (Imap.union (fun _ ca cb -> Some (ca +. cb)) a.terms b.terms);
    constant = a.constant +. b.constant;
  }

let scale k e =
  if k = 0.0 then zero
  else { terms = Imap.map (fun c -> k *. c) e.terms; constant = k *. e.constant }

let sub a b = add a (scale (-1.0) b)

let of_terms terms c =
  List.fold_left (fun acc (coeff, v) -> add acc (var ~coeff v)) (const c) terms

let coeff e v = match Imap.find_opt v e.terms with Some c -> c | None -> 0.0
let constant e = e.constant
let iter f e = Imap.iter f e.terms
let vars e = List.map fst (Imap.bindings e.terms)

let eval e assignment =
  let acc = ref e.constant in
  Imap.iter (fun v c -> acc := !acc +. (c *. assignment v)) e.terms;
  !acc

let pp fmt e =
  let first = ref true in
  Imap.iter
    (fun v c ->
      if !first then begin
        Format.fprintf fmt "%g*x%d" c v;
        first := false
      end
      else if c >= 0.0 then Format.fprintf fmt " + %g*x%d" c v
      else Format.fprintf fmt " - %g*x%d" (-.c) v)
    e.terms;
  if e.constant <> 0.0 || !first then
    if !first then Format.fprintf fmt "%g" e.constant
    else if e.constant > 0.0 then Format.fprintf fmt " + %g" e.constant
    else Format.fprintf fmt " - %g" (-.e.constant)
