module Ds = Mf_structures.Dyn_array

type var_kind = Continuous | Binary | Integer

type relation = Le | Ge | Eq

type var = { name : string; lo : float; hi : float; kind : var_kind }

type constr = { cname : string; expr : Linexpr.t; rel : relation; rhs : float }

type t = {
  vars : var Ds.t;
  constrs : constr Ds.t;
  mutable minimize : bool;
  mutable objective : Linexpr.t;
}

let create () =
  { vars = Ds.create (); constrs = Ds.create (); minimize = true; objective = Linexpr.zero }

let add_var m ?name ?lo ?hi kind =
  let id = Ds.length m.vars in
  let default_lo, default_hi =
    match kind with Binary -> (0.0, 1.0) | Continuous | Integer -> (0.0, infinity)
  in
  let lo = Option.value lo ~default:default_lo in
  let hi = Option.value hi ~default:default_hi in
  if lo > hi then invalid_arg "Model.add_var: lo > hi";
  let name = Option.value name ~default:(Printf.sprintf "x%d" id) in
  Ds.push m.vars { name; lo; hi; kind };
  id

let add_constraint m ?name expr rel rhs =
  let cname = Option.value name ~default:(Printf.sprintf "c%d" (Ds.length m.constrs)) in
  (* Fold the expression's constant into the right-hand side. *)
  let c = Linexpr.constant expr in
  let expr = Linexpr.sub expr (Linexpr.const c) in
  Ds.push m.constrs { cname; expr; rel; rhs = rhs -. c }

let set_objective m ~minimize expr =
  m.minimize <- minimize;
  m.objective <- expr

let var_count m = Ds.length m.vars
let constraint_count m = Ds.length m.constrs

let get_var m v =
  if v < 0 || v >= Ds.length m.vars then invalid_arg "Model: variable out of range";
  Ds.get m.vars v

let var_kind m v = (get_var m v).kind
let var_name m v = (get_var m v).name
let var_lo m v = (get_var m v).lo
let var_hi m v = (get_var m v).hi

let integer_vars m =
  List.filter
    (fun v -> match (get_var m v).kind with Binary | Integer -> true | Continuous -> false)
    (List.init (var_count m) Fun.id)

let constraints m =
  List.map (fun c -> (c.cname, c.expr, c.rel, c.rhs)) (Ds.to_list m.constrs)

let objective m = (m.minimize, m.objective)

let check_feasible m x ~tol =
  if Array.length x <> var_count m then Some "assignment length mismatch"
  else begin
    let violation = ref None in
    let note msg = if !violation = None then violation := Some msg in
    for v = 0 to var_count m - 1 do
      let { name; lo; hi; kind } = get_var m v in
      if x.(v) < lo -. tol || x.(v) > hi +. tol then
        note (Printf.sprintf "bound violated on %s = %g" name x.(v));
      match kind with
      | Binary | Integer ->
        if Float.abs (x.(v) -. Float.round x.(v)) > tol then
          note (Printf.sprintf "integrality violated on %s = %g" name x.(v))
      | Continuous -> ()
    done;
    Ds.iter
      (fun { cname; expr; rel; rhs } ->
        let lhs = Linexpr.eval expr (fun v -> x.(v)) in
        let ok =
          match rel with
          | Le -> lhs <= rhs +. tol
          | Ge -> lhs >= rhs -. tol
          | Eq -> Float.abs (lhs -. rhs) <= tol
        in
        if not ok then note (Printf.sprintf "constraint %s violated: lhs=%g rhs=%g" cname lhs rhs))
      m.constrs;
    !violation
  end

let pp_rel fmt = function
  | Le -> Format.fprintf fmt "<="
  | Ge -> Format.fprintf fmt ">="
  | Eq -> Format.fprintf fmt "="

let pp fmt m =
  Format.fprintf fmt "@[<v>%s %a@," (if m.minimize then "minimize" else "maximize")
    Linexpr.pp m.objective;
  Ds.iter
    (fun { cname; expr; rel; rhs } ->
      Format.fprintf fmt "%s: %a %a %g@," cname Linexpr.pp expr pp_rel rel rhs)
    m.constrs;
  Ds.iteri
    (fun id { name; lo; hi; kind } ->
      Format.fprintf fmt "%s (x%d): %g..%g %s@," name id lo hi
        (match kind with Continuous -> "cont" | Binary -> "bin" | Integer -> "int"))
    m.vars;
  Format.fprintf fmt "@]"
