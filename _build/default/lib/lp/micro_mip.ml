module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period

type solve_result = {
  mapping : Mf_core.Mapping.t option;
  period : float option;
  k : float option;
  status : Branch_bound.status;
  nodes : int;
}

let build inst =
  let n = Instance.task_count inst in
  let m = Instance.machines inst in
  let p = Instance.type_count inst in
  let wf = Instance.workflow inst in
  let max_x = Instance.max_x inst in
  let model = Model.create () in
  let a =
    Array.init n (fun i ->
        Array.init m (fun u ->
            Model.add_var model ~name:(Printf.sprintf "a_%d_%d" i u) Model.Binary))
  in
  let t =
    Array.init m (fun u ->
        Array.init p (fun j ->
            Model.add_var model ~name:(Printf.sprintf "t_%d_%d" u j) Model.Binary))
  in
  let x =
    Array.init n (fun i ->
        Model.add_var model ~name:(Printf.sprintf "x_%d" i) ~lo:0.0 ~hi:max_x.(i)
          Model.Continuous)
  in
  let y =
    Array.init n (fun i ->
        Array.init m (fun u ->
            Model.add_var model
              ~name:(Printf.sprintf "y_%d_%d" i u)
              ~lo:0.0 ~hi:max_x.(i) Model.Continuous))
  in
  let k = Model.add_var model ~name:"K" ~lo:0.0 Model.Continuous in
  (* (3) each task on exactly one machine. *)
  for i = 0 to n - 1 do
    let expr = Linexpr.of_terms (List.init m (fun u -> (1.0, a.(i).(u)))) 0.0 in
    Model.add_constraint model ~name:(Printf.sprintf "one_machine_%d" i) expr Model.Eq 1.0
  done;
  (* (4) each machine dedicated to at most one type. *)
  for u = 0 to m - 1 do
    let expr = Linexpr.of_terms (List.init p (fun j -> (1.0, t.(u).(j)))) 0.0 in
    Model.add_constraint model ~name:(Printf.sprintf "one_type_%d" u) expr Model.Le 1.0
  done;
  (* (5) a task may only run on a machine specialized to its type. *)
  for i = 0 to n - 1 do
    let ty = Workflow.ttype wf i in
    for u = 0 to m - 1 do
      let expr = Linexpr.sub (Linexpr.var a.(i).(u)) (Linexpr.var t.(u).(ty)) in
      Model.add_constraint model ~name:(Printf.sprintf "spec_%d_%d" i u) expr Model.Le 0.0
    done
  done;
  (* (6) product counts: x_i >= F(i,u) * x_succ(i) - (1 - a(i,u)) MAXx_i. *)
  for i = 0 to n - 1 do
    for u = 0 to m - 1 do
      let factor = 1.0 /. (1.0 -. Instance.f inst i u) in
      let lhs =
        match Workflow.successor wf i with
        | Some s ->
          (* x_i - F*x_s - MAXx_i*a(i,u) >= -MAXx_i *)
          Linexpr.sub
            (Linexpr.sub (Linexpr.var x.(i)) (Linexpr.var ~coeff:factor x.(s)))
            (Linexpr.var ~coeff:max_x.(i) a.(i).(u))
        | None ->
          (* x_i - MAXx_i*a(i,u) >= F - MAXx_i  (virtual successor count 1) *)
          Linexpr.sub
            (Linexpr.sub (Linexpr.var x.(i)) (Linexpr.const factor))
            (Linexpr.var ~coeff:max_x.(i) a.(i).(u))
      in
      Model.add_constraint model ~name:(Printf.sprintf "count_%d_%d" i u) lhs Model.Ge
        (-.max_x.(i))
    done
  done;
  (* (7) machine periods bounded by K. *)
  for u = 0 to m - 1 do
    let expr =
      Linexpr.sub
        (Linexpr.of_terms (List.init n (fun i -> (Instance.w inst i u, y.(i).(u)))) 0.0)
        (Linexpr.var k)
    in
    Model.add_constraint model ~name:(Printf.sprintf "period_%d" u) expr Model.Le 0.0
  done;
  (* (8) y(i,u) linearises a(i,u) * x_i. *)
  for i = 0 to n - 1 do
    for u = 0 to m - 1 do
      Model.add_constraint model
        ~name:(Printf.sprintf "y_ub_a_%d_%d" i u)
        (Linexpr.sub (Linexpr.var y.(i).(u)) (Linexpr.var ~coeff:max_x.(i) a.(i).(u)))
        Model.Le 0.0;
      Model.add_constraint model
        ~name:(Printf.sprintf "y_ub_x_%d_%d" i u)
        (Linexpr.sub (Linexpr.var y.(i).(u)) (Linexpr.var x.(i)))
        Model.Le 0.0;
      Model.add_constraint model
        ~name:(Printf.sprintf "y_lb_%d_%d" i u)
        (Linexpr.sub
           (Linexpr.sub (Linexpr.var y.(i).(u)) (Linexpr.var x.(i)))
           (Linexpr.var ~coeff:max_x.(i) a.(i).(u)))
        Model.Ge (-.max_x.(i))
    done
  done;
  Model.set_objective model ~minimize:true (Linexpr.var k);
  (model, (a, t, x, y, k))

let solve ?node_budget inst =
  let model, (a, _, _, _, kvar) = build inst in
  let r = Mip.solve ?node_budget model in
  match r.Branch_bound.solution with
  | None ->
    {
      mapping = None;
      period = None;
      k = None;
      status = r.Branch_bound.status;
      nodes = r.Branch_bound.nodes;
    }
  | Some sol ->
    let n = Instance.task_count inst in
    let m = Instance.machines inst in
    let alloc =
      Array.init n (fun i ->
          let best = ref 0 in
          for u = 1 to m - 1 do
            if sol.(a.(i).(u)) > sol.(a.(i).(!best)) then best := u
          done;
          !best)
    in
    let mp = Mapping.of_array inst alloc in
    {
      mapping = Some mp;
      period = Some (Period.period inst mp);
      k = Some sol.(kvar);
      status = r.Branch_bound.status;
      nodes = r.Branch_bound.nodes;
    }
