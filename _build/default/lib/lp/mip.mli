(** Public entry points of the LP/MIP solver stack. *)

(** [solve ?node_budget model] solves a mixed-integer model by
    branch-and-bound over simplex relaxations (see {!Branch_bound}). *)
val solve : ?node_budget:int -> Model.t -> Branch_bound.result

(** [solve_relaxation model] solves the continuous relaxation only.
    Returns the model-space solution and objective. *)
val solve_relaxation :
  Model.t -> [ `Optimal of float array * float | `Infeasible | `Unbounded ]

(** [solve_relaxation_exact model] solves the relaxation with the
    exact-rational simplex — slower, bit-exact; used to validate the float
    path. *)
val solve_relaxation_exact :
  Model.t -> [ `Optimal of float array * float | `Infeasible | `Unbounded ]
