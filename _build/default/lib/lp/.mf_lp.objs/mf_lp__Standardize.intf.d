lib/lp/standardize.mli: Model
