lib/lp/mip.mli: Branch_bound Model
