lib/lp/mip.ml: Array Branch_bound Mf_numeric Simplex Standardize
