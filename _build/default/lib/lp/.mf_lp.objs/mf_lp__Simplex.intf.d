lib/lp/simplex.mli: Mf_numeric
