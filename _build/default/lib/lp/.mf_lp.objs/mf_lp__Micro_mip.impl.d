lib/lp/micro_mip.ml: Array Branch_bound Linexpr List Mf_core Mip Model Printf
