lib/lp/model.ml: Array Float Format Fun Linexpr List Mf_structures Option Printf
