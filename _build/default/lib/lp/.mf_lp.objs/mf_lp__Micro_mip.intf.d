lib/lp/micro_mip.mli: Branch_bound Mf_core Model
