lib/lp/standardize.ml: Array Float Fun Hashtbl Linexpr List Mf_structures Model
