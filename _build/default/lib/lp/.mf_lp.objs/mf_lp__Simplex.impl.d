lib/lp/simplex.ml: Array Mf_numeric
