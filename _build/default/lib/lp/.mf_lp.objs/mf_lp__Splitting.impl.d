lib/lp/splitting.ml: Array Linexpr List Mf_core Mf_heuristics Mip Model Printf
