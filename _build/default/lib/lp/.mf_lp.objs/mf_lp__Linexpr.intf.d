lib/lp/linexpr.mli: Format
