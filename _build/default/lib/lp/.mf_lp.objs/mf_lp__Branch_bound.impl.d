lib/lp/branch_bound.ml: Array Float List Mf_structures Model Option Simplex Standardize
