lib/lp/splitting.mli: Mf_core
