(** Sparse linear expressions over integer-identified variables.

    The building block of the LP model DSL: an expression is a finite map
    from variable ids to coefficients plus a constant term.  Zero
    coefficients are never stored. *)

type t

val zero : t

(** [var ?coeff v] is [coeff * x_v] (default coefficient 1). *)
val var : ?coeff:float -> int -> t

(** [const c] is the constant expression [c]. *)
val const : float -> t

val add : t -> t -> t
val sub : t -> t -> t

(** [scale k e] multiplies every coefficient and the constant by [k]. *)
val scale : float -> t -> t

(** [of_terms terms c] builds [sum coeff_i * x_i + c]; repeated variables
    accumulate. *)
val of_terms : (float * int) list -> float -> t

(** [coeff e v] is the coefficient of variable [v] (0 when absent). *)
val coeff : t -> int -> float

val constant : t -> float

(** [iter f e] applies [f var coeff] over stored (non-zero) terms in
    increasing variable order. *)
val iter : (int -> float -> unit) -> t -> unit

(** [vars e] lists mentioned variables in increasing order. *)
val vars : t -> int list

(** [eval e assignment] evaluates under [assignment v = value of x_v]. *)
val eval : t -> (int -> float) -> float

val pp : Format.formatter -> t -> unit
