module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period

type result = {
  period : float;
  shares : float array array;
  loads : float array;
}

let solve inst =
  let n = Instance.task_count inst in
  let m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let model = Model.create () in
  let nv =
    Array.init n (fun i ->
        Array.init m (fun u ->
            Model.add_var model ~name:(Printf.sprintf "n_%d_%d" i u) Model.Continuous))
  in
  let k = Model.add_var model ~name:"K" Model.Continuous in
  (* Flow conservation: successes of task i equal downstream demand. *)
  for i = 0 to n - 1 do
    let successes =
      Linexpr.of_terms
        (List.init m (fun u -> (1.0 -. Instance.f inst i u, nv.(i).(u))))
        0.0
    in
    match Workflow.successor wf i with
    | None -> Model.add_constraint model ~name:(Printf.sprintf "flow_%d" i) successes Model.Eq 1.0
    | Some j ->
      let demand = Linexpr.of_terms (List.init m (fun u -> (1.0, nv.(j).(u)))) 0.0 in
      Model.add_constraint model
        ~name:(Printf.sprintf "flow_%d" i)
        (Linexpr.sub successes demand) Model.Eq 0.0
  done;
  (* Machine loads bounded by the period. *)
  for u = 0 to m - 1 do
    let load = Linexpr.of_terms (List.init n (fun i -> (Instance.w inst i u, nv.(i).(u)))) 0.0 in
    Model.add_constraint model
      ~name:(Printf.sprintf "load_%d" u)
      (Linexpr.sub load (Linexpr.var k))
      Model.Le 0.0
  done;
  Model.set_objective model ~minimize:true (Linexpr.var k);
  match Mip.solve_relaxation model with
  | `Infeasible | `Unbounded -> failwith "Splitting.solve: LP unexpectedly unsolvable"
  | `Optimal (sol, period) ->
    let counts = Array.init n (fun i -> Array.init m (fun u -> sol.(nv.(i).(u)))) in
    let shares =
      Array.map
        (fun row ->
          let total = Array.fold_left ( +. ) 0.0 row in
          if total <= 0.0 then Array.map (fun _ -> 0.0) row
          else Array.map (fun v -> v /. total) row)
        counts
    in
    let loads =
      Array.init m (fun u ->
          let acc = ref 0.0 in
          for i = 0 to n - 1 do
            acc := !acc +. (counts.(i).(u) *. Instance.w inst i u)
          done;
          !acc)
    in
    { period; shares; loads }

let round inst r =
  let eng = Mf_heuristics.Engine.create inst in
  Array.iter
    (fun task ->
      let best = ref (-1) and best_share = ref neg_infinity in
      List.iter
        (fun u ->
          let s = r.shares.(task).(u) in
          if s > !best_share then begin
            best := u;
            best_share := s
          end)
        (Mf_heuristics.Engine.eligible_machines eng ~task);
      assert (!best >= 0);
      Mf_heuristics.Engine.assign eng ~task ~machine:!best)
    (Mf_heuristics.Engine.order eng);
  let mp = Mf_heuristics.Engine.mapping eng in
  (mp, Period.period inst mp)
