(** The paper's future-work extension: divisible task workloads.

    "An interesting problem would be to consider that the instances of a
    same task can be computed by several machines.  Thus, the workload of a
    task would be divided and the throughput could be improved."
    (Conclusion of the paper.)

    With divisible workloads the problem becomes a pure linear program:
    let [n(i,u) >= 0] be the average number of products of task [i]
    processed on machine [u] per finished product.  Flow conservation ties
    successes to downstream demand, and the period is the largest machine
    load:

    {v minimize K
      s.t.  sum_u n(i,u) * (1 - f(i,u)) = demand(i)          (flow)
            demand(i) = sum_u n(succ_inv...)                  (see below)
            sum_i n(i,u) * w(i,u) <= K                        (period) v}

    where [demand(i)] is 1 for the final task and the total workload
    [sum_u n(j,u)] of its successor [j] otherwise (one product from each
    predecessor per assembled output).

    The LP optimum is a {e lower bound} for every mapping rule of the
    paper (any specialized mapping is the special case where each task
    uses a single machine), and [round] turns the shares into a feasible
    specialized mapping, giving an LP-guided heuristic. *)

type result = {
  period : float;  (** the LP optimum — a bound no integral mapping beats *)
  shares : float array array;
      (** [shares.(i).(u)]: fraction of task [i]'s workload on machine [u] *)
  loads : float array;  (** per-machine time per finished product *)
}

(** [solve inst] solves the divisible-workload LP.
    @raise Failure if the LP solver fails unexpectedly (it cannot: the
    problem is always feasible and bounded). *)
val solve : Mf_core.Instance.t -> result

(** [round inst r] builds a feasible {e specialized} mapping by walking
    tasks backward and assigning each to its largest-share eligible
    machine.  Returns the mapping and its (integral) period. *)
val round : Mf_core.Instance.t -> result -> Mf_core.Mapping.t * float
