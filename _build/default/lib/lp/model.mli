(** Mixed-integer linear programming models.

    A model collects typed variables (continuous, binary or general
    integer) with bounds, linear constraints and a linear objective.  It is
    the solver-independent description consumed by {!Simplex} (after
    relaxation and standardisation) and {!Branch_bound}. *)

type var_kind = Continuous | Binary | Integer

type relation = Le | Ge | Eq

type t

val create : unit -> t

(** [add_var m ?name ?lo ?hi kind] declares a variable and returns its id.
    Default bounds: [0, +inf) for continuous/integer, [0, 1] for binary.
    @raise Invalid_argument if [lo > hi]. *)
val add_var : t -> ?name:string -> ?lo:float -> ?hi:float -> var_kind -> int

(** [add_constraint m ?name expr rel rhs] posts [expr rel rhs] (any
    constant inside [expr] is folded into the right-hand side). *)
val add_constraint : t -> ?name:string -> Linexpr.t -> relation -> float -> unit

(** [set_objective m ~minimize expr] sets the objective (default:
    minimize). *)
val set_objective : t -> minimize:bool -> Linexpr.t -> unit

(** {1 Introspection} *)

val var_count : t -> int
val constraint_count : t -> int
val var_kind : t -> int -> var_kind
val var_name : t -> int -> string
val var_lo : t -> int -> float
val var_hi : t -> int -> float

(** [integer_vars m] lists binary and integer variable ids. *)
val integer_vars : t -> int list

val constraints : t -> (string * Linexpr.t * relation * float) list
val objective : t -> bool * Linexpr.t

(** [check_feasible m assignment ~tol] verifies bounds, integrality and
    every constraint within absolute tolerance [tol]; returns the first
    violated item's description if any. *)
val check_feasible : t -> float array -> tol:float -> string option

val pp : Format.formatter -> t -> unit
