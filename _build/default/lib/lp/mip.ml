let solve ?node_budget model = Branch_bound.solve ?node_budget model

let solve_relaxation model =
  match Standardize.build model with
  | None -> `Infeasible
  | Some std -> (
    match
      Simplex.Float_solver.solve ~a:std.Standardize.a ~b:std.Standardize.b
        ~c:std.Standardize.c
    with
    | Simplex.Float_solver.Infeasible -> `Infeasible
    | Simplex.Float_solver.Unbounded -> `Unbounded
    | Simplex.Float_solver.Optimal (x, obj) ->
      `Optimal (std.Standardize.recover x, Standardize.model_objective std obj))

let solve_relaxation_exact model =
  match Standardize.build model with
  | None -> `Infeasible
  | Some std ->
    let module R = Mf_numeric.Rat in
    let conv = Array.map (Array.map R.of_float) in
    (match
       Simplex.Rat_solver.solve ~a:(conv std.Standardize.a)
         ~b:(Array.map R.of_float std.Standardize.b)
         ~c:(Array.map R.of_float std.Standardize.c)
     with
    | Simplex.Rat_solver.Infeasible -> `Infeasible
    | Simplex.Rat_solver.Unbounded -> `Unbounded
    | Simplex.Rat_solver.Optimal (x, obj) ->
      let xf = Array.map R.to_float x in
      `Optimal (std.Standardize.recover xf, Standardize.model_objective std (R.to_float obj)))
