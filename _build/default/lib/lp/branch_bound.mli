(** Best-first branch-and-bound for mixed-integer models.

    Each node is a pair of bound-override vectors; its LP relaxation is
    solved by the float simplex.  Nodes are explored in order of their LP
    bound, branching on the most fractional integer variable.  Solving a
    MIP is NP-complete (the paper leans on CPLEX for the same reason), so a
    node budget caps the search; when it triggers, the incumbent is
    returned with status [Feasible] instead of [Optimal]. *)

type status =
  | Optimal  (** incumbent proved optimal *)
  | Feasible  (** node budget exhausted with an incumbent *)
  | Infeasible
  | Unbounded  (** the root LP relaxation is unbounded *)
  | Unknown  (** node budget exhausted with no incumbent *)

type result = {
  status : status;
  solution : float array option;  (** model-space variable values *)
  objective : float option;  (** model-space objective *)
  nodes : int;
}

(** [solve ?node_budget ?int_tol model] (defaults: 200k nodes, tolerance
    1e-6). *)
val solve : ?node_budget:int -> ?int_tol:float -> Model.t -> result
