(** The paper's mixed-integer program for specialized mappings
    (Section 6.1, program (9)).

    Variables, for tasks [i], machines [u] and types [j]:
    - [a(i,u)] binary — task [i] runs on machine [u];
    - [t(u,j)] binary — machine [u] is specialized to type [j];
    - [x(i)] rational — products task [i] processes per output;
    - [y(i,u)] rational — linearisation of [a(i,u) * x(i)];
    - [K] rational — the period, minimized.

    Constraints (3)-(8) of the paper, generalised from chains to in-forests
    by replacing [x_{i+1}] with [x_{succ(i)}] (1 for final tasks). *)

type solve_result = {
  mapping : Mf_core.Mapping.t option;  (** decoded allocation, when solved *)
  period : float option;
      (** period of the decoded mapping, recomputed exactly from the model
          of Section 4.1 (not the LP's [K], which carries tolerances) *)
  k : float option;  (** the MIP objective value *)
  status : Branch_bound.status;
  nodes : int;
}

(** [build inst] constructs the MIP for an instance.  Returns the model and
    the variable-id layout [(a, t, x, y, k)] for tests. *)
val build :
  Mf_core.Instance.t ->
  Model.t * (int array array * int array array * int array * int array array * int)

(** [solve ?node_budget inst] builds and solves the MIP, decoding the
    allocation from the [a(i,u)] variables. *)
val solve : ?node_budget:int -> Mf_core.Instance.t -> solve_result
