(* Tests for mf_reliability: Binomial tails and the output guarantees of
   the paper's Section 2, cross-checked by Monte Carlo. *)

module Binomial = Mf_reliability.Binomial
module Guarantee = Mf_reliability.Guarantee
module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Gen = Mf_workload.Gen
module Rng = Mf_prng.Rng

(* ------------------------------------------------------------------ *)
(* Binomial                                                            *)
(* ------------------------------------------------------------------ *)

let test_binomial_pmf_small () =
  (* Binomial(4, 0.5): pmf = 1/16, 4/16, 6/16, 4/16, 1/16. *)
  let expected = [| 0.0625; 0.25; 0.375; 0.25; 0.0625 |] in
  Array.iteri
    (fun k e ->
      Alcotest.(check (float 1e-12)) (Printf.sprintf "pmf %d" k) e (Binomial.pmf ~n:4 ~p:0.5 k))
    expected

let test_binomial_pmf_sums_to_one () =
  List.iter
    (fun (n, p) ->
      let total = ref 0.0 in
      for k = 0 to n do
        total := !total +. Binomial.pmf ~n ~p k
      done;
      Alcotest.(check (float 1e-9)) (Printf.sprintf "n=%d p=%g" n p) 1.0 !total)
    [ (1, 0.3); (10, 0.5); (50, 0.9); (100, 0.01); (300, 0.97) ]

let test_binomial_sf_cdf_complement () =
  List.iter
    (fun k ->
      let sf = Binomial.sf ~n:20 ~p:0.3 k in
      let cdf = Binomial.cdf ~n:20 ~p:0.3 (k - 1) in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "k=%d" k) 1.0 (sf +. cdf))
    [ 0; 1; 5; 10; 20 ]

let test_binomial_edge_cases () =
  Alcotest.(check (float 0.0)) "sf at 0" 1.0 (Binomial.sf ~n:10 ~p:0.5 0);
  Alcotest.(check (float 0.0)) "sf above n" 0.0 (Binomial.sf ~n:10 ~p:0.5 11);
  Alcotest.(check (float 0.0)) "p=0 pmf" 1.0 (Binomial.pmf ~n:10 ~p:0.0 0);
  Alcotest.(check (float 0.0)) "p=1 pmf" 1.0 (Binomial.pmf ~n:10 ~p:1.0 10);
  Alcotest.(check (float 1e-12)) "mean" 5.0 (Binomial.mean ~n:10 ~p:0.5);
  Alcotest.(check (float 1e-12)) "variance" 2.5 (Binomial.variance ~n:10 ~p:0.5)

let test_binomial_large_n_stable () =
  (* Tail of Binomial(10^6, 0.9) around its mean: no overflow/NaN. *)
  let sf = Binomial.sf ~n:1_000_000 ~p:0.9 900_000 in
  Alcotest.(check bool) "finite" true (Float.is_finite sf);
  Alcotest.(check bool) "near half" true (sf > 0.4 && sf < 0.6)

let test_min_trials_basic () =
  (* p = 1: need exactly successes trials. *)
  Alcotest.(check int) "p=1" 7 (Binomial.min_trials ~p:1.0 ~successes:7 ~confidence:0.99);
  Alcotest.(check int) "zero successes" 0 (Binomial.min_trials ~p:0.4 ~successes:0 ~confidence:0.99);
  (* The returned n satisfies the bound and n-1 does not. *)
  let n = Binomial.min_trials ~p:0.9 ~successes:100 ~confidence:0.999 in
  Alcotest.(check bool) "satisfies" true (Binomial.sf ~n ~p:0.9 100 >= 0.999);
  Alcotest.(check bool) "minimal" true (Binomial.sf ~n:(n - 1) ~p:0.9 100 < 0.999)

let prop_min_trials_minimal =
  QCheck.Test.make ~name:"binomial: min_trials is minimal and sufficient" ~count:100
    QCheck.(triple (float_range 0.3 0.99) (int_range 1 200) (float_range 0.5 0.999))
    (fun (p, successes, confidence) ->
      let n = Binomial.min_trials ~p ~successes ~confidence in
      Binomial.sf ~n ~p successes >= confidence
      && (n = successes || Binomial.sf ~n:(n - 1) ~p successes < confidence))

let prop_sf_monotone_in_n =
  QCheck.Test.make ~name:"binomial: sf increases with n" ~count:100
    QCheck.(triple (float_range 0.1 0.95) (int_range 1 60) (int_range 1 40))
    (fun (p, n, k) ->
      QCheck.assume (k <= n);
      Binomial.sf ~n:(n + 1) ~p k >= Binomial.sf ~n ~p k -. 1e-12)

(* ------------------------------------------------------------------ *)
(* Guarantee                                                           *)
(* ------------------------------------------------------------------ *)

let two_task_instance () =
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  Instance.create ~workflow:wf ~machines:2
    ~w:(Array.make_matrix 2 2 100.0)
    ~f:[| [| 0.1; 0.2 |]; [| 0.05; 0.3 |] |]

let test_survival_probability () =
  let inst = two_task_instance () in
  let mp = Mapping.of_array inst [| 0; 0 |] in
  Alcotest.(check (float 1e-12)) "q" (0.9 *. 0.95) (Guarantee.survival_probability inst mp);
  let mp2 = Mapping.of_array inst [| 1; 1 |] in
  Alcotest.(check (float 1e-12)) "q2" (0.8 *. 0.7) (Guarantee.survival_probability inst mp2)

let test_guarantee_more_than_expectation () =
  (* The probabilistic guarantee needs more inputs than the expectation. *)
  let inst = two_task_instance () in
  let mp = Mapping.of_array inst [| 0; 0 |] in
  let x_out = 100 in
  let expected =
    match Mf_core.Products.inputs_needed inst mp ~x_out with
    | [ (_, n) ] -> n
    | _ -> Alcotest.fail "expected single source"
  in
  let guaranteed = Guarantee.inputs_for inst mp ~x_out ~confidence:0.999 in
  Alcotest.(check bool)
    (Printf.sprintf "guaranteed %d > expected %d" guaranteed expected)
    true (guaranteed > expected);
  (* And the probability bound really holds. *)
  Alcotest.(check bool) "bound holds" true
    (Guarantee.success_probability inst mp ~inputs:guaranteed ~x_out >= 0.999)

let test_guarantee_monte_carlo_agreement () =
  let inst = two_task_instance () in
  let mp = Mapping.of_array inst [| 0; 0 |] in
  let inputs = 120 and x_out = 100 in
  let analytic = Guarantee.success_probability inst mp ~inputs ~x_out in
  let empirical = Guarantee.monte_carlo inst mp ~inputs ~x_out ~trials:4000 ~seed:5 in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.4f vs MC %.4f" analytic empirical)
    true
    (Float.abs (analytic -. empirical) < 0.03)

let test_guarantee_requires_chain () =
  let wf = Workflow.in_forest ~types:[| 0; 1; 2 |] ~successor:[| Some 2; Some 2; None |] in
  let inst =
    Instance.create ~workflow:wf ~machines:3
      ~w:(Array.make_matrix 3 3 1.0)
      ~f:(Array.make_matrix 3 3 0.1)
  in
  let mp = Mapping.of_array inst [| 0; 1; 2 |] in
  Alcotest.check_raises "not a chain"
    (Invalid_argument "Guarantee: probabilistic guarantees are derived for chain applications")
    (fun () -> ignore (Guarantee.survival_probability inst mp))

let test_guarantee_on_generated_instance () =
  let inst = Gen.chain (Rng.create 5) (Gen.default ~tasks:10 ~types:3 ~machines:4) in
  let mp = Mf_heuristics.Registry.solve Mf_heuristics.Registry.H4w inst in
  let q = Guarantee.survival_probability inst mp in
  Alcotest.(check bool) "q in (0,1)" true (q > 0.0 && q < 1.0);
  let n50 = Guarantee.inputs_for inst mp ~x_out:50 ~confidence:0.99 in
  let n50_soft = Guarantee.inputs_for inst mp ~x_out:50 ~confidence:0.5 in
  Alcotest.(check bool) "higher confidence costs more" true (n50 >= n50_soft);
  Alcotest.(check bool) "at least x_out" true (n50_soft >= 50)

let () =
  Alcotest.run "mf_reliability"
    [
      ( "binomial",
        [
          Alcotest.test_case "pmf small" `Quick test_binomial_pmf_small;
          Alcotest.test_case "pmf sums to one" `Quick test_binomial_pmf_sums_to_one;
          Alcotest.test_case "sf/cdf complement" `Quick test_binomial_sf_cdf_complement;
          Alcotest.test_case "edge cases" `Quick test_binomial_edge_cases;
          Alcotest.test_case "large n" `Quick test_binomial_large_n_stable;
          Alcotest.test_case "min_trials" `Quick test_min_trials_basic;
        ] );
      ( "binomial-props",
        List.map QCheck_alcotest.to_alcotest [ prop_min_trials_minimal; prop_sf_monotone_in_n ] );
      ( "guarantee",
        [
          Alcotest.test_case "survival probability" `Quick test_survival_probability;
          Alcotest.test_case "beats expectation" `Quick test_guarantee_more_than_expectation;
          Alcotest.test_case "monte carlo" `Slow test_guarantee_monte_carlo_agreement;
          Alcotest.test_case "requires chain" `Quick test_guarantee_requires_chain;
          Alcotest.test_case "generated instance" `Quick test_guarantee_on_generated_instance;
        ] );
    ]
