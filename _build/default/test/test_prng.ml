(* Tests for mf_prng: determinism, ranges, statistical sanity, splitting. *)

module Rng = Mf_prng.Rng
module Splitmix64 = Mf_prng.Splitmix64
module Xoshiro256 = Mf_prng.Xoshiro256

let test_splitmix_reference () =
  (* Reference values for seed 1234567 from the public-domain C code. *)
  let sm = Splitmix64.create 1234567L in
  let v1 = Splitmix64.next sm in
  let v2 = Splitmix64.next sm in
  Alcotest.(check bool) "distinct outputs" true (v1 <> v2);
  (* Determinism: same seed, same stream. *)
  let sm' = Splitmix64.create 1234567L in
  Alcotest.(check int64) "deterministic 1" v1 (Splitmix64.next sm');
  Alcotest.(check int64) "deterministic 2" v2 (Splitmix64.next sm')

let test_xoshiro_deterministic () =
  let a = Xoshiro256.create 42L and b = Xoshiro256.create 42L in
  for i = 0 to 99 do
    Alcotest.(check int64)
      (Printf.sprintf "step %d" i)
      (Xoshiro256.next a) (Xoshiro256.next b)
  done

let test_xoshiro_copy_independent () =
  let a = Xoshiro256.create 7L in
  ignore (Xoshiro256.next a);
  let b = Xoshiro256.copy a in
  let va = Xoshiro256.next a in
  let vb = Xoshiro256.next b in
  Alcotest.(check int64) "copies agree" va vb;
  ignore (Xoshiro256.next a);
  (* b has consumed one fewer value. *)
  let va2 = Xoshiro256.next a and vb2 = Xoshiro256.next b in
  Alcotest.(check bool) "streams diverge after unequal consumption" true (va2 <> vb2)

let test_xoshiro_jump_disjoint () =
  (* After a jump the streams should not collide over a modest window. *)
  let a = Xoshiro256.create 99L in
  let b = Xoshiro256.copy a in
  Xoshiro256.jump b;
  let seen = Hashtbl.create 4096 in
  for _ = 1 to 2000 do
    Hashtbl.replace seen (Xoshiro256.next a) ()
  done;
  let collisions = ref 0 in
  for _ = 1 to 2000 do
    if Hashtbl.mem seen (Xoshiro256.next b) then incr collisions
  done;
  Alcotest.(check int) "no collisions" 0 !collisions

let test_rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 10.0 in
    Alcotest.(check bool) "in [0,10)" true (x >= 0.0 && x < 10.0)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.float: non-positive bound")
    (fun () -> ignore (Rng.float rng 0.0))

let test_rng_uniform_range () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng ~lo:100.0 ~hi:1000.0 in
    Alcotest.(check bool) "in [100,1000)" true (x >= 100.0 && x < 1000.0)
  done

let test_rng_int_range () =
  let rng = Rng.create 5 in
  let counts = Array.make 6 0 in
  for _ = 1 to 6000 do
    let v = Rng.int rng 6 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "face %d roughly uniform" i) true (c > 800 && c < 1200))
    counts;
  for _ = 1 to 100 do
    let v = Rng.int_range rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_bernoulli () =
  let rng = Rng.create 6 in
  let hits = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.02 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "2% failure rate" true (rate > 0.015 && rate < 0.026);
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.0)

let test_rng_exponential () =
  let rng = Rng.create 7 in
  let n = 20000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.exponential rng ~rate:2.0 in
    Alcotest.(check bool) "positive" true (x >= 0.0);
    acc := !acc +. x
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 1/rate" true (Float.abs (mean -. 0.5) < 0.02)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 8 in
  let xs = Array.init 50 Fun.id in
  Rng.shuffle rng xs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_split_independent () =
  let rng = Rng.create 9 in
  let child = Rng.split rng in
  let seen = Hashtbl.create 1024 in
  for _ = 1 to 1000 do
    Hashtbl.replace seen (Rng.int64 rng) ()
  done;
  let collisions = ref 0 in
  for _ = 1 to 1000 do
    if Hashtbl.mem seen (Rng.int64 child) then incr collisions
  done;
  Alcotest.(check int) "split streams disjoint" 0 !collisions

let test_rng_mean_of_uniform () =
  let rng = Rng.create 10 in
  let n = 50000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng 1.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let prop_choose_member =
  QCheck.Test.make ~name:"rng: choose returns a member" ~count:200
    QCheck.(pair small_int (array_of_size Gen.(int_range 1 20) int))
    (fun (seed, xs) ->
      let rng = Rng.create (abs seed) in
      let picked = Rng.choose rng xs in
      Array.exists (fun x -> x = picked) xs)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"rng: int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create (abs seed) in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let () =
  Alcotest.run "mf_prng"
    [
      ( "generators",
        [
          Alcotest.test_case "splitmix64" `Quick test_splitmix_reference;
          Alcotest.test_case "xoshiro determinism" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "xoshiro copy" `Quick test_xoshiro_copy_independent;
          Alcotest.test_case "xoshiro jump" `Quick test_xoshiro_jump_disjoint;
        ] );
      ( "rng",
        [
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "int uniformity" `Quick test_rng_int_range;
          Alcotest.test_case "bernoulli" `Quick test_rng_bernoulli;
          Alcotest.test_case "exponential" `Quick test_rng_exponential;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "uniform mean" `Quick test_rng_mean_of_uniform;
        ] );
      ( "rng-props",
        List.map QCheck_alcotest.to_alcotest [ prop_choose_member; prop_int_in_bounds ] );
    ]
