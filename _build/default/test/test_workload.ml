(* Tests for mf_workload: generator ranges, type coverage, determinism. *)

module Gen = Mf_workload.Gen
module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Rng = Mf_prng.Rng

let test_default_params () =
  let p = Gen.default ~tasks:10 ~types:3 ~machines:5 in
  Alcotest.(check (float 0.0)) "w_min" 100.0 p.Gen.w_min;
  Alcotest.(check (float 0.0)) "w_max" 1000.0 p.Gen.w_max;
  Alcotest.(check (float 0.0)) "f_min" 0.005 p.Gen.f_min;
  Alcotest.(check (float 0.0)) "f_max" 0.02 p.Gen.f_max;
  let hi = Gen.with_high_failures p in
  Alcotest.(check (float 0.0)) "high f_max" 0.1 hi.Gen.f_max;
  Alcotest.(check (float 0.0)) "high f_min" 0.0 hi.Gen.f_min

let test_chain_shape () =
  let inst = Gen.chain (Rng.create 1) (Gen.default ~tasks:12 ~types:4 ~machines:6) in
  Alcotest.(check int) "n" 12 (Instance.task_count inst);
  Alcotest.(check int) "p" 4 (Instance.type_count inst);
  Alcotest.(check int) "m" 6 (Instance.machines inst);
  Alcotest.(check bool) "chain" true (Workflow.is_chain (Instance.workflow inst))

let test_ranges_respected () =
  let inst = Gen.chain (Rng.create 2) (Gen.default ~tasks:20 ~types:5 ~machines:8) in
  for i = 0 to 19 do
    for u = 0 to 7 do
      let w = Instance.w inst i u and f = Instance.f inst i u in
      Alcotest.(check bool) "w in range" true (w >= 100.0 && w < 1000.0);
      Alcotest.(check bool) "f in range" true (f >= 0.005 && f < 0.02)
    done
  done

let test_type_coverage () =
  (* Every type must appear even when p = n. *)
  for seed = 1 to 20 do
    let inst = Gen.chain (Rng.create seed) (Gen.default ~tasks:6 ~types:6 ~machines:6) in
    Alcotest.(check int) "all types used" 6 (Instance.type_count inst)
  done

let test_determinism () =
  let params = Gen.default ~tasks:10 ~types:3 ~machines:4 in
  let a = Gen.chain (Rng.create 42) params in
  let b = Gen.chain (Rng.create 42) params in
  for i = 0 to 9 do
    for u = 0 to 3 do
      Alcotest.(check (float 0.0)) "same w" (Instance.w a i u) (Instance.w b i u);
      Alcotest.(check (float 0.0)) "same f" (Instance.f a i u) (Instance.f b i u)
    done
  done

let test_task_attached () =
  let params =
    { (Gen.default ~tasks:8 ~types:2 ~machines:5) with Gen.task_attached_failures = true }
  in
  let inst = Gen.chain (Rng.create 3) params in
  Alcotest.(check bool) "f task-attached" true (Instance.failures_task_attached inst)

let test_in_tree_valid () =
  for seed = 1 to 10 do
    let inst = Gen.in_tree (Rng.create seed) (Gen.default ~tasks:15 ~types:4 ~machines:6) in
    let wf = Instance.workflow inst in
    (* Single sink at task n-1, everything flows forward. *)
    Alcotest.(check (list int)) "single sink" [ 14 ] (Workflow.sinks wf);
    for i = 0 to 13 do
      match Workflow.successor wf i with
      | None -> Alcotest.fail "non-final task without successor"
      | Some j -> Alcotest.(check bool) "forward edge" true (j > i)
    done
  done

let test_validation_errors () =
  Alcotest.check_raises "types > tasks" (Invalid_argument "Gen: need 1 <= types <= tasks")
    (fun () -> ignore (Gen.chain (Rng.create 1) (Gen.default ~tasks:2 ~types:3 ~machines:5)));
  let bad = { (Gen.default ~tasks:2 ~types:1 ~machines:2) with Gen.f_max = 1.0 } in
  Alcotest.check_raises "f range" (Invalid_argument "Gen: bad f range") (fun () ->
      ignore (Gen.chain (Rng.create 1) bad))

let prop_types_array_coverage =
  QCheck.Test.make ~name:"gen: types_array covers all types" ~count:200
    QCheck.(triple (int_range 0 10000) (int_range 1 30) (int_range 1 8))
    (fun (seed, n, p_raw) ->
      let p = min p_raw n in
      let types = Gen.types_array (Rng.create seed) ~tasks:n ~types:p in
      let used = Array.make p false in
      Array.iter (fun ty -> used.(ty) <- true) types;
      Array.length types = n && Array.for_all Fun.id used)

let () =
  Alcotest.run "mf_workload"
    [
      ( "gen",
        [
          Alcotest.test_case "defaults" `Quick test_default_params;
          Alcotest.test_case "chain shape" `Quick test_chain_shape;
          Alcotest.test_case "ranges" `Quick test_ranges_respected;
          Alcotest.test_case "type coverage" `Quick test_type_coverage;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "task-attached failures" `Quick test_task_attached;
          Alcotest.test_case "in-tree validity" `Quick test_in_tree_valid;
          Alcotest.test_case "validation" `Quick test_validation_errors;
        ] );
      ("gen-props", List.map QCheck_alcotest.to_alcotest [ prop_types_array_coverage ]);
    ]
