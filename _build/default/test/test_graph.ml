(* Tests for mf_graph: Digraph, Bipartite, Hungarian, Bottleneck. *)

module Digraph = Mf_graph.Digraph
module Bipartite = Mf_graph.Bipartite
module Hungarian = Mf_graph.Hungarian
module Bottleneck = Mf_graph.Bottleneck
module Rng = Mf_prng.Rng

(* ------------------------------------------------------------------ *)
(* Digraph                                                             *)
(* ------------------------------------------------------------------ *)

let test_digraph_basic () =
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 1 3;
  Digraph.add_edge g 1 3;
  (* duplicate ignored *)
  Alcotest.(check int) "vertices" 4 (Digraph.vertex_count g);
  Alcotest.(check int) "edges" 3 (Digraph.edge_count g);
  Alcotest.(check (list int)) "succ" [ 2; 3 ] (Digraph.succ g 1);
  Alcotest.(check (list int)) "pred" [ 1 ] (Digraph.pred g 3);
  Alcotest.(check int) "out" 2 (Digraph.out_degree g 1);
  Alcotest.(check int) "in" 1 (Digraph.in_degree g 2);
  Alcotest.(check bool) "mem" true (Digraph.mem_edge g 0 1);
  Alcotest.(check bool) "not mem" false (Digraph.mem_edge g 1 0)

let test_digraph_topo () =
  let g = Digraph.create 5 in
  Digraph.add_edge g 0 2;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 3;
  Digraph.add_edge g 3 4;
  (match Digraph.topological_order g with
  | None -> Alcotest.fail "expected a DAG"
  | Some order ->
    let pos = Array.make 5 0 in
    List.iteri (fun i v -> pos.(v) <- i) order;
    Alcotest.(check bool) "0 before 2" true (pos.(0) < pos.(2));
    Alcotest.(check bool) "1 before 2" true (pos.(1) < pos.(2));
    Alcotest.(check bool) "2 before 3" true (pos.(2) < pos.(3)));
  Alcotest.(check bool) "is_dag" true (Digraph.is_dag g);
  Alcotest.(check (list int)) "sources" [ 0; 1 ] (Digraph.sources g);
  Alcotest.(check (list int)) "sinks" [ 4 ] (Digraph.sinks g)

let test_digraph_cycle () =
  let g = Digraph.create 3 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 0;
  Alcotest.(check bool) "cycle detected" false (Digraph.is_dag g);
  Alcotest.(check bool) "topo none" true (Option.is_none (Digraph.topological_order g))

let test_digraph_bounds () =
  let g = Digraph.create 2 in
  Alcotest.check_raises "bad vertex" (Invalid_argument "Digraph: vertex out of range")
    (fun () -> Digraph.add_edge g 0 2)

(* ------------------------------------------------------------------ *)
(* Bipartite / Hopcroft–Karp                                           *)
(* ------------------------------------------------------------------ *)

let test_bipartite_perfect () =
  let g = Bipartite.create ~n_left:3 ~n_right:3 in
  (* A 3-cycle structure that requires augmenting paths. *)
  Bipartite.add_edge g 0 0;
  Bipartite.add_edge g 0 1;
  Bipartite.add_edge g 1 0;
  Bipartite.add_edge g 2 1;
  Bipartite.add_edge g 2 2;
  let m = Bipartite.maximum_matching g in
  Alcotest.(check int) "perfect" 3 m.Bipartite.size;
  Alcotest.(check bool) "perfect on left" true (Bipartite.is_perfect_on_left g m);
  (* Check consistency of the two match arrays. *)
  Array.iteri
    (fun u v -> if v >= 0 then Alcotest.(check int) "mutual" u m.Bipartite.right_match.(v))
    m.Bipartite.left_match

let test_bipartite_deficient () =
  let g = Bipartite.create ~n_left:3 ~n_right:3 in
  (* Two left vertices compete for the single right vertex 0. *)
  Bipartite.add_edge g 0 0;
  Bipartite.add_edge g 1 0;
  Bipartite.add_edge g 2 1;
  let m = Bipartite.maximum_matching g in
  Alcotest.(check int) "size 2" 2 m.Bipartite.size;
  Alcotest.(check bool) "not perfect" false (Bipartite.is_perfect_on_left g m)

let test_bipartite_empty () =
  let g = Bipartite.create ~n_left:2 ~n_right:2 in
  let m = Bipartite.maximum_matching g in
  Alcotest.(check int) "no edges" 0 m.Bipartite.size

(* Simple greedy + augmenting-path reference (Kuhn's algorithm). *)
let kuhn_matching n_left n_right edges =
  let adj = Array.make n_left [] in
  List.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) edges;
  let match_r = Array.make n_right (-1) in
  let rec try_kuhn visited u =
    List.exists
      (fun v ->
        if visited.(v) then false
        else begin
          visited.(v) <- true;
          if match_r.(v) = -1 || try_kuhn visited match_r.(v) then begin
            match_r.(v) <- u;
            true
          end
          else false
        end)
      adj.(u)
  in
  let size = ref 0 in
  for u = 0 to n_left - 1 do
    if try_kuhn (Array.make n_right false) u then incr size
  done;
  !size

let prop_hopcroft_karp_matches_kuhn =
  QCheck.Test.make ~name:"bipartite: HK size equals Kuhn size" ~count:200
    QCheck.(
      triple (int_range 1 8) (int_range 1 8) (list (pair (int_range 0 7) (int_range 0 7))))
    (fun (nl, nr, raw_edges) ->
      let edges =
        List.filter (fun (u, v) -> u < nl && v < nr) raw_edges |> List.sort_uniq compare
      in
      let g = Bipartite.create ~n_left:nl ~n_right:nr in
      List.iter (fun (u, v) -> Bipartite.add_edge g u v) edges;
      let m = Bipartite.maximum_matching g in
      m.Bipartite.size = kuhn_matching nl nr edges)

(* ------------------------------------------------------------------ *)
(* Hungarian                                                           *)
(* ------------------------------------------------------------------ *)

let test_hungarian_square () =
  let cost = [| [| 4.0; 1.0; 3.0 |]; [| 2.0; 0.0; 5.0 |]; [| 3.0; 2.0; 2.0 |] |] in
  let assignment, total = Hungarian.solve cost in
  Alcotest.(check (float 1e-9)) "optimal total" 5.0 total;
  (* Optimal: row0->col1 (1), row1->col0 (2), row2->col2 (2). *)
  Alcotest.(check (array int)) "assignment" [| 1; 0; 2 |] assignment

let test_hungarian_rectangular () =
  let cost = [| [| 10.0; 2.0; 8.0; 9.0 |]; [| 7.0; 3.0; 4.0; 2.0 |] |] in
  let assignment, total = Hungarian.solve cost in
  Alcotest.(check (float 1e-9)) "optimal total" 4.0 total;
  Alcotest.(check (array int)) "assignment" [| 1; 3 |] assignment

let test_hungarian_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Hungarian.solve: empty matrix") (fun () ->
      ignore (Hungarian.solve [||]));
  Alcotest.check_raises "tall" (Invalid_argument "Hungarian.solve: more rows than columns")
    (fun () -> ignore (Hungarian.solve [| [| 1.0 |]; [| 2.0 |] |]))

(* Brute-force assignment over all permutations, n <= m. *)
let brute_force_assignment reduce init cost =
  let n = Array.length cost and m = Array.length cost.(0) in
  let best = ref infinity in
  let used = Array.make m false in
  let rec go i acc =
    if i = n then best := Float.min !best acc
    else
      for j = 0 to m - 1 do
        if not used.(j) then begin
          used.(j) <- true;
          go (i + 1) (reduce acc cost.(i).(j));
          used.(j) <- false
        end
      done
  in
  go 0 init;
  !best

let arb_cost_matrix =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 5 in
      let* m = int_range n 6 in
      let* rows = list_repeat n (list_repeat m (float_range 0.0 100.0)) in
      return (Array.of_list (List.map Array.of_list rows)))
  in
  QCheck.make
    ~print:(fun c ->
      String.concat "\n"
        (Array.to_list (Array.map (fun r -> String.concat " " (Array.to_list (Array.map string_of_float r))) c)))
    gen

let prop_hungarian_optimal =
  QCheck.Test.make ~name:"hungarian: matches brute force optimum" ~count:150 arb_cost_matrix
    (fun cost ->
      let _, total = Hungarian.solve cost in
      let expected = brute_force_assignment ( +. ) 0.0 cost in
      Float.abs (total -. expected) < 1e-6)

let prop_hungarian_valid_assignment =
  QCheck.Test.make ~name:"hungarian: assignment is injective and in range" ~count:150
    arb_cost_matrix (fun cost ->
      let assignment, _ = Hungarian.solve cost in
      let m = Array.length cost.(0) in
      let seen = Hashtbl.create 8 in
      Array.for_all
        (fun j ->
          let fresh = not (Hashtbl.mem seen j) in
          Hashtbl.replace seen j ();
          j >= 0 && j < m && fresh)
        assignment)

(* ------------------------------------------------------------------ *)
(* Bottleneck                                                          *)
(* ------------------------------------------------------------------ *)

let test_bottleneck_basic () =
  let cost = [| [| 9.0; 2.0 |]; [| 3.0; 8.0 |] |] in
  let assignment, value = Bottleneck.solve cost in
  Alcotest.(check (float 1e-9)) "bottleneck" 3.0 value;
  Alcotest.(check (array int)) "assignment" [| 1; 0 |] assignment

let test_bottleneck_vs_minsum () =
  (* Min-sum and min-max can disagree; check a case where they do. *)
  let cost = [| [| 1.0; 4.0 |]; [| 2.0; 100.0 |] |] in
  (* Min-sum picks (0,1)+(1,0)=6; bottleneck value 4 beats the 100. *)
  let _, value = Bottleneck.solve cost in
  Alcotest.(check (float 1e-9)) "bottleneck 4" 4.0 value

let prop_bottleneck_optimal =
  QCheck.Test.make ~name:"bottleneck: matches brute force min-max" ~count:150 arb_cost_matrix
    (fun cost ->
      let _, value = Bottleneck.solve cost in
      let expected = brute_force_assignment Float.max neg_infinity cost in
      Float.abs (value -. expected) < 1e-9)

let prop_bottleneck_leq_any_matching_max =
  QCheck.Test.make ~name:"bottleneck: value is attained by the returned assignment" ~count:150
    arb_cost_matrix (fun cost ->
      let assignment, value = Bottleneck.solve cost in
      let attained = ref neg_infinity in
      Array.iteri (fun i j -> attained := Float.max !attained cost.(i).(j)) assignment;
      Float.abs (!attained -. value) < 1e-9)

let () =
  Alcotest.run "mf_graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "basic" `Quick test_digraph_basic;
          Alcotest.test_case "topological order" `Quick test_digraph_topo;
          Alcotest.test_case "cycle" `Quick test_digraph_cycle;
          Alcotest.test_case "bounds" `Quick test_digraph_bounds;
        ] );
      ( "bipartite",
        [
          Alcotest.test_case "perfect" `Quick test_bipartite_perfect;
          Alcotest.test_case "deficient" `Quick test_bipartite_deficient;
          Alcotest.test_case "empty" `Quick test_bipartite_empty;
        ] );
      ("bipartite-props", List.map QCheck_alcotest.to_alcotest [ prop_hopcroft_karp_matches_kuhn ]);
      ( "hungarian",
        [
          Alcotest.test_case "square" `Quick test_hungarian_square;
          Alcotest.test_case "rectangular" `Quick test_hungarian_rectangular;
          Alcotest.test_case "errors" `Quick test_hungarian_errors;
        ] );
      ( "hungarian-props",
        List.map QCheck_alcotest.to_alcotest [ prop_hungarian_optimal; prop_hungarian_valid_assignment ] );
      ( "bottleneck",
        [
          Alcotest.test_case "basic" `Quick test_bottleneck_basic;
          Alcotest.test_case "vs minsum" `Quick test_bottleneck_vs_minsum;
        ] );
      ( "bottleneck-props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_bottleneck_optimal; prop_bottleneck_leq_any_matching_max ] );
    ]
