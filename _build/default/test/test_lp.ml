(* Tests for mf_lp: Linexpr, Model, Simplex (float and exact), Branch_bound,
   and the paper's Micro_mip validated against brute force. *)

module Linexpr = Mf_lp.Linexpr
module Model = Mf_lp.Model
module Mip = Mf_lp.Mip
module Branch_bound = Mf_lp.Branch_bound
module Micro_mip = Mf_lp.Micro_mip
module Instance = Mf_core.Instance
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Gen = Mf_workload.Gen
module Rng = Mf_prng.Rng

(* ------------------------------------------------------------------ *)
(* Linexpr                                                             *)
(* ------------------------------------------------------------------ *)

let test_linexpr_basics () =
  let e = Linexpr.of_terms [ (2.0, 0); (3.0, 1); (-2.0, 0) ] 5.0 in
  Alcotest.(check (float 0.0)) "coeff cancelled" 0.0 (Linexpr.coeff e 0);
  Alcotest.(check (float 0.0)) "coeff" 3.0 (Linexpr.coeff e 1);
  Alcotest.(check (float 0.0)) "constant" 5.0 (Linexpr.constant e);
  Alcotest.(check (list int)) "vars" [ 1 ] (Linexpr.vars e);
  Alcotest.(check (float 0.0)) "eval" 11.0 (Linexpr.eval e (fun _ -> 2.0))

let test_linexpr_algebra () =
  let a = Linexpr.of_terms [ (1.0, 0); (2.0, 1) ] 1.0 in
  let b = Linexpr.of_terms [ (3.0, 1); (4.0, 2) ] 2.0 in
  let s = Linexpr.add a b in
  Alcotest.(check (float 0.0)) "add coeff" 5.0 (Linexpr.coeff s 1);
  Alcotest.(check (float 0.0)) "add const" 3.0 (Linexpr.constant s);
  let d = Linexpr.sub a b in
  Alcotest.(check (float 0.0)) "sub coeff" (-1.0) (Linexpr.coeff d 1);
  let k = Linexpr.scale 2.0 a in
  Alcotest.(check (float 0.0)) "scale" 4.0 (Linexpr.coeff k 1);
  Alcotest.(check (float 0.0)) "scale by zero is zero" 0.0
    (Linexpr.constant (Linexpr.scale 0.0 a))

(* ------------------------------------------------------------------ *)
(* LP relaxation on known problems                                     *)
(* ------------------------------------------------------------------ *)

(* max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> optimum (4,0), value 12. *)
let test_lp_textbook_max () =
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" Model.Continuous in
  let y = Model.add_var m ~name:"y" Model.Continuous in
  Model.add_constraint m (Linexpr.of_terms [ (1.0, x); (1.0, y) ] 0.0) Model.Le 4.0;
  Model.add_constraint m (Linexpr.of_terms [ (1.0, x); (3.0, y) ] 0.0) Model.Le 6.0;
  Model.set_objective m ~minimize:false (Linexpr.of_terms [ (3.0, x); (2.0, y) ] 0.0);
  match Mip.solve_relaxation m with
  | `Optimal (sol, obj) ->
    Alcotest.(check (float 1e-7)) "objective" 12.0 obj;
    Alcotest.(check (float 1e-7)) "x" 4.0 sol.(x);
    Alcotest.(check (float 1e-7)) "y" 0.0 sol.(y)
  | _ -> Alcotest.fail "expected optimal"

(* min x + y s.t. x + 2y >= 3, 3x + y >= 4 -> intersection (1,1), value 2. *)
let test_lp_textbook_min () =
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous in
  let y = Model.add_var m Model.Continuous in
  Model.add_constraint m (Linexpr.of_terms [ (1.0, x); (2.0, y) ] 0.0) Model.Ge 3.0;
  Model.add_constraint m (Linexpr.of_terms [ (3.0, x); (1.0, y) ] 0.0) Model.Ge 4.0;
  Model.set_objective m ~minimize:true (Linexpr.of_terms [ (1.0, x); (1.0, y) ] 0.0);
  match Mip.solve_relaxation m with
  | `Optimal (sol, obj) ->
    Alcotest.(check (float 1e-7)) "objective" 2.0 obj;
    Alcotest.(check (float 1e-7)) "x" 1.0 sol.(x);
    Alcotest.(check (float 1e-7)) "y" 1.0 sol.(y)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_equality_and_bounds () =
  (* min -x with x + y = 2, x in [0, 1.5], y >= 0 -> x = 1.5. *)
  let m = Model.create () in
  let x = Model.add_var m ~hi:1.5 Model.Continuous in
  let y = Model.add_var m Model.Continuous in
  Model.add_constraint m (Linexpr.of_terms [ (1.0, x); (1.0, y) ] 0.0) Model.Eq 2.0;
  Model.set_objective m ~minimize:true (Linexpr.var ~coeff:(-1.0) x);
  match Mip.solve_relaxation m with
  | `Optimal (sol, obj) ->
    Alcotest.(check (float 1e-7)) "x at bound" 1.5 sol.(x);
    Alcotest.(check (float 1e-7)) "obj" (-1.5) obj
  | _ -> Alcotest.fail "expected optimal"

let test_lp_free_variable () =
  (* min x with x free, x >= -7 via constraint -> -7. *)
  let m = Model.create () in
  let x = Model.add_var m ~lo:neg_infinity Model.Continuous in
  Model.add_constraint m (Linexpr.var x) Model.Ge (-7.0);
  Model.set_objective m ~minimize:true (Linexpr.var x);
  match Mip.solve_relaxation m with
  | `Optimal (sol, obj) ->
    Alcotest.(check (float 1e-7)) "x" (-7.0) sol.(x);
    Alcotest.(check (float 1e-7)) "obj" (-7.0) obj
  | _ -> Alcotest.fail "expected optimal"

let test_lp_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous in
  Model.add_constraint m (Linexpr.var x) Model.Le 1.0;
  Model.add_constraint m (Linexpr.var x) Model.Ge 2.0;
  Model.set_objective m ~minimize:true (Linexpr.var x);
  (match Mip.solve_relaxation m with
  | `Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible")

let test_lp_unbounded () =
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous in
  Model.set_objective m ~minimize:false (Linexpr.var x);
  (match Mip.solve_relaxation m with
  | `Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded")

let test_lp_degenerate () =
  (* Degenerate vertex: three constraints meet at (0,0); Bland's rule must
     still terminate. *)
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous in
  let y = Model.add_var m Model.Continuous in
  Model.add_constraint m (Linexpr.of_terms [ (1.0, x); (1.0, y) ] 0.0) Model.Ge 0.0;
  Model.add_constraint m (Linexpr.of_terms [ (1.0, x); (-1.0, y) ] 0.0) Model.Ge 0.0;
  Model.add_constraint m (Linexpr.of_terms [ (1.0, x); (2.0, y) ] 0.0) Model.Le 4.0;
  Model.set_objective m ~minimize:false (Linexpr.of_terms [ (1.0, x); (1.0, y) ] 0.0);
  match Mip.solve_relaxation m with
  | `Optimal (_, obj) -> Alcotest.(check (float 1e-7)) "objective" 4.0 obj
  | _ -> Alcotest.fail "expected optimal"

(* ------------------------------------------------------------------ *)
(* Exact rational simplex agreement                                    *)
(* ------------------------------------------------------------------ *)

let random_model rng ~nvars ~ncons =
  let m = Model.create () in
  let vars =
    Array.init nvars (fun _ -> Model.add_var m ~hi:(Rng.uniform rng ~lo:1.0 ~hi:10.0) Model.Continuous)
  in
  for _ = 1 to ncons do
    let terms =
      Array.to_list
        (Array.map (fun v -> (Rng.uniform rng ~lo:(-3.0) ~hi:3.0, v)) vars)
    in
    let rel = if Rng.bool rng then Model.Le else Model.Ge in
    let rhs = Rng.uniform rng ~lo:(-5.0) ~hi:10.0 in
    Model.add_constraint m (Linexpr.of_terms terms 0.0) rel rhs
  done;
  let obj =
    Array.to_list (Array.map (fun v -> (Rng.uniform rng ~lo:(-2.0) ~hi:2.0, v)) vars)
  in
  Model.set_objective m ~minimize:(Rng.bool rng) (Linexpr.of_terms obj 0.0);
  m

let test_float_vs_exact_simplex () =
  let rng = Rng.create 77 in
  let agree = ref 0 in
  for _ = 1 to 25 do
    let m = random_model rng ~nvars:4 ~ncons:4 in
    match (Mip.solve_relaxation m, Mip.solve_relaxation_exact m) with
    | `Optimal (_, f), `Optimal (_, e) ->
      Alcotest.(check bool)
        (Printf.sprintf "objectives agree (%g vs %g)" f e)
        true
        (Float.abs (f -. e) <= 1e-6 *. Float.max 1.0 (Float.abs e));
      incr agree
    | `Infeasible, `Infeasible | `Unbounded, `Unbounded -> incr agree
    | _ -> Alcotest.fail "float and exact simplex disagree on status"
  done;
  Alcotest.(check int) "all cases checked" 25 !agree

(* ------------------------------------------------------------------ *)
(* Branch and bound                                                    *)
(* ------------------------------------------------------------------ *)

let test_mip_knapsack () =
  (* max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, binaries -> a=b=1, value 9. *)
  let m = Model.create () in
  let a = Model.add_var m Model.Binary in
  let b = Model.add_var m Model.Binary in
  let c = Model.add_var m Model.Binary in
  Model.add_constraint m (Linexpr.of_terms [ (2.0, a); (3.0, b); (1.0, c) ] 0.0) Model.Le 5.0;
  Model.set_objective m ~minimize:false
    (Linexpr.of_terms [ (5.0, a); (4.0, b); (3.0, c) ] 0.0);
  let r = Mip.solve m in
  Alcotest.(check bool) "optimal" true (r.Branch_bound.status = Branch_bound.Optimal);
  (match r.Branch_bound.objective with
  | Some obj -> Alcotest.(check (float 1e-6)) "value" 9.0 obj
  | None -> Alcotest.fail "no objective");
  match r.Branch_bound.solution with
  | Some sol ->
    Alcotest.(check (float 1e-9)) "a" 1.0 sol.(a);
    Alcotest.(check (float 1e-9)) "b" 1.0 sol.(b);
    Alcotest.(check (float 1e-9)) "c" 0.0 sol.(c)
  | None -> Alcotest.fail "no solution"

let test_mip_integer_rounding_matters () =
  (* max x + y s.t. 2x + 2y <= 5, integers -> LP gives 2.5, MIP gives 2. *)
  let m = Model.create () in
  let x = Model.add_var m Model.Integer in
  let y = Model.add_var m Model.Integer in
  Model.add_constraint m (Linexpr.of_terms [ (2.0, x); (2.0, y) ] 0.0) Model.Le 5.0;
  Model.set_objective m ~minimize:false (Linexpr.of_terms [ (1.0, x); (1.0, y) ] 0.0);
  let r = Mip.solve m in
  (match r.Branch_bound.objective with
  | Some obj -> Alcotest.(check (float 1e-6)) "value" 2.0 obj
  | None -> Alcotest.fail "no objective");
  match Mip.solve_relaxation m with
  | `Optimal (_, lp) -> Alcotest.(check (float 1e-6)) "relaxation" 2.5 lp
  | _ -> Alcotest.fail "expected optimal relaxation"

let test_mip_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m Model.Binary in
  Model.add_constraint m (Linexpr.var x) Model.Ge 0.4;
  Model.add_constraint m (Linexpr.var x) Model.Le 0.6;
  Model.set_objective m ~minimize:true (Linexpr.var x);
  let r = Mip.solve m in
  Alcotest.(check bool) "infeasible" true (r.Branch_bound.status = Branch_bound.Infeasible)

let test_mip_solution_feasible () =
  (* Whatever the MIP returns must pass the model's own feasibility check. *)
  let m = Model.create () in
  let xs = Array.init 5 (fun _ -> Model.add_var m Model.Binary) in
  Model.add_constraint m
    (Linexpr.of_terms (Array.to_list (Array.map (fun v -> (1.0, v)) xs)) 0.0)
    Model.Ge 2.0;
  Model.add_constraint m
    (Linexpr.of_terms [ (1.0, xs.(0)); (1.0, xs.(1)) ] 0.0)
    Model.Le 1.0;
  Model.set_objective m ~minimize:true
    (Linexpr.of_terms (Array.to_list (Array.mapi (fun i v -> (float_of_int (i + 1), v)) xs)) 0.0);
  let r = Mip.solve m in
  match r.Branch_bound.solution with
  | Some sol -> Alcotest.(check (option string)) "feasible" None (Model.check_feasible m sol ~tol:1e-6)
  | None -> Alcotest.fail "expected a solution"

(* ------------------------------------------------------------------ *)
(* Micro MIP vs brute force - the validation that matters              *)
(* ------------------------------------------------------------------ *)

let test_micro_mip_matches_brute () =
  for seed = 1 to 8 do
    let inst = Gen.chain (Rng.create seed) (Gen.default ~tasks:4 ~types:2 ~machines:3) in
    let _, expected = Mf_exact.Brute.specialized inst in
    let r = Micro_mip.solve inst in
    Alcotest.(check bool)
      (Printf.sprintf "solved (seed %d)" seed)
      true
      (r.Micro_mip.status = Branch_bound.Optimal);
    (match (r.Micro_mip.mapping, r.Micro_mip.period) with
    | Some mp, Some period ->
      Alcotest.(check bool) "specialized" true (Mapping.satisfies inst mp Mapping.Specialized);
      Alcotest.(check bool)
        (Printf.sprintf "period %.3f matches brute %.3f (seed %d)" period expected seed)
        true
        (Float.abs (period -. expected) <= 1e-4 *. expected)
    | _ -> Alcotest.fail "no mapping decoded")
  done

let test_micro_mip_k_close_to_period () =
  let inst = Gen.chain (Rng.create 3) (Gen.default ~tasks:4 ~types:2 ~machines:3) in
  let r = Micro_mip.solve inst in
  match (r.Micro_mip.k, r.Micro_mip.period) with
  | Some k, Some period ->
    Alcotest.(check bool)
      (Printf.sprintf "K=%.4f vs recomputed period=%.4f" k period)
      true
      (Float.abs (k -. period) <= 1e-4 *. period)
  | _ -> Alcotest.fail "expected K and period"

let test_micro_mip_on_tree () =
  let inst = Gen.in_tree (Rng.create 5) (Gen.default ~tasks:4 ~types:2 ~machines:3) in
  let _, expected = Mf_exact.Brute.specialized inst in
  let r = Micro_mip.solve inst in
  match r.Micro_mip.period with
  | Some period ->
    Alcotest.(check bool)
      (Printf.sprintf "tree period %.3f vs %.3f" period expected)
      true
      (Float.abs (period -. expected) <= 1e-4 *. expected)
  | None -> Alcotest.fail "expected a solution"

let test_micro_mip_build_shape () =
  let inst = Gen.chain (Rng.create 1) (Gen.default ~tasks:3 ~types:2 ~machines:2) in
  let model, (a, t, x, y, _) = Micro_mip.build inst in
  (* n*m a-vars + m*p t-vars + n x-vars + n*m y-vars + K. *)
  Alcotest.(check int) "var count" ((3 * 2) + (2 * 2) + 3 + (3 * 2) + 1) (Model.var_count model);
  Alcotest.(check int) "a dims" 3 (Array.length a);
  Alcotest.(check int) "t dims" 2 (Array.length t);
  Alcotest.(check int) "x dims" 3 (Array.length x);
  Alcotest.(check int) "y dims" 3 (Array.length y);
  (* (3): n rows; (4): m rows; (5): n*m; (6): n*m; (7): m; (8): 3*n*m. *)
  Alcotest.(check int) "constraint count"
    (3 + 2 + (3 * 2) + (3 * 2) + 2 + (3 * 3 * 2))
    (Model.constraint_count model)

(* ------------------------------------------------------------------ *)
(* Splitting extension (future work)                                   *)
(* ------------------------------------------------------------------ *)

module Splitting = Mf_lp.Splitting

let test_splitting_lower_bound () =
  for seed = 1 to 8 do
    let inst = Gen.chain (Rng.create seed) (Gen.default ~tasks:5 ~types:2 ~machines:3) in
    let r = Splitting.solve inst in
    let _, opt = Mf_exact.Brute.specialized inst in
    Alcotest.(check bool)
      (Printf.sprintf "LP %.2f <= exact %.2f (seed %d)" r.Splitting.period opt seed)
      true
      (r.Splitting.period <= opt +. (1e-6 *. opt))
  done

let test_splitting_single_machine_exact () =
  (* With one machine the LP and the unique mapping coincide. *)
  let inst = Gen.chain (Rng.create 3) (Gen.default ~tasks:4 ~types:1 ~machines:1) in
  let r = Splitting.solve inst in
  let mp = Mapping.of_array inst [| 0; 0; 0; 0 |] in
  Alcotest.(check bool) "LP equals single-machine period" true
    (Float.abs (r.Splitting.period -. Period.period inst mp) <= 1e-6 *. r.Splitting.period)

let test_splitting_shares_normalised () =
  let inst = Gen.chain (Rng.create 7) (Gen.default ~tasks:6 ~types:2 ~machines:4) in
  let r = Splitting.solve inst in
  Array.iteri
    (fun i row ->
      let total = Array.fold_left ( +. ) 0.0 row in
      Alcotest.(check bool) (Printf.sprintf "task %d shares sum to 1" i) true
        (Float.abs (total -. 1.0) < 1e-6);
      Array.iter (fun s -> Alcotest.(check bool) "share in [0,1]" true (s >= -1e-9 && s <= 1.0 +. 1e-9)) row)
    r.Splitting.shares

let test_splitting_loads_below_period () =
  let inst = Gen.chain (Rng.create 9) (Gen.default ~tasks:6 ~types:2 ~machines:4) in
  let r = Splitting.solve inst in
  Array.iter
    (fun load ->
      Alcotest.(check bool) "load <= K" true (load <= r.Splitting.period +. 1e-6))
    r.Splitting.loads

let test_splitting_round_feasible () =
  for seed = 1 to 8 do
    let inst = Gen.chain (Rng.create seed) (Gen.default ~tasks:8 ~types:3 ~machines:4) in
    let r = Splitting.solve inst in
    let mp, period = Splitting.round inst r in
    Alcotest.(check bool) "specialized" true (Mapping.satisfies inst mp Mapping.Specialized);
    Alcotest.(check bool) "integral period >= LP bound" true
      (period >= r.Splitting.period -. (1e-6 *. period));
    Alcotest.(check (float 1e-9)) "period consistent" (Period.period inst mp) period
  done

let () =
  Alcotest.run "mf_lp"
    [
      ( "linexpr",
        [
          Alcotest.test_case "basics" `Quick test_linexpr_basics;
          Alcotest.test_case "algebra" `Quick test_linexpr_algebra;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "textbook max" `Quick test_lp_textbook_max;
          Alcotest.test_case "textbook min" `Quick test_lp_textbook_min;
          Alcotest.test_case "equality and bounds" `Quick test_lp_equality_and_bounds;
          Alcotest.test_case "free variable" `Quick test_lp_free_variable;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "degenerate" `Quick test_lp_degenerate;
          Alcotest.test_case "float vs exact" `Slow test_float_vs_exact_simplex;
        ] );
      ( "branch-bound",
        [
          Alcotest.test_case "knapsack" `Quick test_mip_knapsack;
          Alcotest.test_case "integer rounding" `Quick test_mip_integer_rounding_matters;
          Alcotest.test_case "infeasible" `Quick test_mip_infeasible;
          Alcotest.test_case "solution feasible" `Quick test_mip_solution_feasible;
        ] );
      ( "splitting",
        [
          Alcotest.test_case "lower bound" `Slow test_splitting_lower_bound;
          Alcotest.test_case "single machine" `Quick test_splitting_single_machine_exact;
          Alcotest.test_case "shares normalised" `Quick test_splitting_shares_normalised;
          Alcotest.test_case "loads below period" `Quick test_splitting_loads_below_period;
          Alcotest.test_case "rounding feasible" `Quick test_splitting_round_feasible;
        ] );
      ( "micro-mip",
        [
          Alcotest.test_case "matches brute force" `Slow test_micro_mip_matches_brute;
          Alcotest.test_case "K equals period" `Slow test_micro_mip_k_close_to_period;
          Alcotest.test_case "works on trees" `Slow test_micro_mip_on_tree;
          Alcotest.test_case "model shape" `Quick test_micro_mip_build_shape;
        ] );
    ]
