test/test_structures.ml: Alcotest Array List Mf_structures QCheck QCheck_alcotest
