test/test_prng.ml: Alcotest Array Float Fun Gen Hashtbl List Mf_prng Printf QCheck QCheck_alcotest
