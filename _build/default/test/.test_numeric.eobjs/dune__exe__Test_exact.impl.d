test/test_exact.ml: Alcotest Array Float Fun List Mf_core Mf_exact Mf_heuristics Mf_lp Mf_prng Mf_workload Printf QCheck QCheck_alcotest String
