test/test_sim.ml: Alcotest Array Float Hashtbl List Mf_core Mf_heuristics Mf_prng Mf_sim Mf_workload Printf QCheck QCheck_alcotest String
