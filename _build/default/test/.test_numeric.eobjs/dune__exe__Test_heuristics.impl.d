test/test_heuristics.ml: Alcotest Array Float List Mf_core Mf_exact Mf_heuristics Mf_prng Mf_workload Printf QCheck QCheck_alcotest String
