test/test_reliability.ml: Alcotest Array Float List Mf_core Mf_heuristics Mf_prng Mf_reliability Mf_workload Printf QCheck QCheck_alcotest
