test/test_core.ml: Alcotest Array Filename Float Format Fun List Mf_core Mf_graph Mf_numeric Mf_prng Mf_workload Printf QCheck QCheck_alcotest Sys
