test/test_numeric.ml: Alcotest Array Float Gen List Mf_numeric QCheck QCheck_alcotest Stdlib String
