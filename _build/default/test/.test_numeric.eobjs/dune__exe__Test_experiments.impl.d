test/test_experiments.ml: Alcotest Array Filename Float Format Fun List Mf_core Mf_experiments Mf_heuristics Mf_prng Mf_workload Printf String Sys
