test/test_lp.ml: Alcotest Array Float Mf_core Mf_exact Mf_lp Mf_prng Mf_workload Printf
