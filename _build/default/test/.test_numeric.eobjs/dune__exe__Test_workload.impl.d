test/test_workload.ml: Alcotest Array Fun List Mf_core Mf_prng Mf_workload QCheck QCheck_alcotest
