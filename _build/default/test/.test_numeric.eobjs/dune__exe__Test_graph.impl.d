test/test_graph.ml: Alcotest Array Float Hashtbl List Mf_graph Mf_prng Option QCheck QCheck_alcotest String
